//! The incremental verification cache.
//!
//! Giallar's pitch is push-button *re*-verification on every compiler change
//! (§1 of the paper), but re-discharging all obligations of all 44 passes on
//! every run does not scale as the registry and rule library grow.  This
//! module caches per-pass verdicts keyed by a **stable content fingerprint**
//! of everything a verdict depends on:
//!
//! * the pass metadata (name, virtual class, family, reported LOC, loop
//!   templates),
//! * the canonical serialization of every generated [`ProofObligation`]
//!   (see [`crate::serialize`]), and
//! * the rewrite-rule library fingerprint of
//!   [`qc_symbolic::rule_library_fingerprint`] — a cached verdict is only
//!   valid for the rule library it was discharged under.
//!
//! [`crate::verifier::verify_all_passes_cached`] consults the cache and
//! re-discharges only passes whose fingerprint changed, producing reports
//! identical (modulo timing) to the uncached path.  The cache persists to a
//! JSON file (see [`VerdictCache::to_json`] for the format) so CI and local
//! runs can reuse verdicts across processes.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use smtlite::{Fingerprint, FingerprintBuilder};

use crate::json::{self, Value};
use crate::obligation::ProofObligation;
use crate::registry::VerifiedPass;
use crate::serialize::obligation_canonical_form;
use crate::verifier::PassReport;

/// Version of the cache file format; bump on any breaking schema change so
/// stale files are discarded instead of misread.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// The stable fingerprint of one pass's obligation set: pass metadata plus
/// every obligation's canonical form plus the rule-library fingerprint.
pub fn pass_fingerprint(
    pass: &VerifiedPass,
    obligations: &[ProofObligation],
    rule_library: Fingerprint,
) -> Fingerprint {
    let mut builder = FingerprintBuilder::new();
    builder.write_str("giallar-pass");
    builder.write_u64(u64::from(CACHE_FORMAT_VERSION));
    builder.write_u64(rule_library.0);
    builder.write_str(pass.name);
    builder.write_str(&format!("{:?}", pass.class));
    builder.write_str(&format!("{:?}", pass.family));
    builder.write_u64(pass.pass_loc as u64);
    for template in &pass.templates {
        builder.write_str(&format!("{template:?}"));
    }
    builder.write_u64(obligations.len() as u64);
    for obligation in obligations {
        builder.write_str(&obligation_canonical_form(obligation));
    }
    builder.finish()
}

/// One cached verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Fingerprint of the obligation set the verdict was discharged for.
    pub fingerprint: Fingerprint,
    /// Pass LOC recorded in the report.
    pub pass_loc: usize,
    /// Number of subgoals discharged.
    pub subgoals: usize,
    /// Whether every subgoal was discharged.
    pub verified: bool,
    /// Failure description, when verification failed.
    pub failure: Option<String>,
    /// Wall-clock seconds of the original (cold) discharge.
    pub time_seconds: f64,
}

impl CacheEntry {
    fn report(&self, name: &str) -> PassReport {
        PassReport {
            name: name.to_string(),
            pass_loc: self.pass_loc,
            subgoals: self.subgoals,
            time_seconds: self.time_seconds,
            verified: self.verified,
            failure: self.failure.clone(),
        }
    }
}

/// A persistent map from pass name to cached verdict, tagged with the rule
/// library fingerprint all entries were discharged under.
#[derive(Debug, Clone)]
pub struct VerdictCache {
    rule_library: Fingerprint,
    entries: BTreeMap<String, CacheEntry>,
    hits: usize,
    misses: usize,
}

impl VerdictCache {
    /// An empty cache bound to the current rewrite-rule library.
    pub fn new() -> Self {
        VerdictCache {
            rule_library: qc_symbolic::rule_library_fingerprint(),
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Loads a cache from `path`.  A missing file yields an empty cache; a
    /// file written under a different format version or rule library is
    /// discarded wholesale (every entry would be stale anyway).
    ///
    /// # Errors
    ///
    /// Returns an error for unreadable files or unparseable JSON.
    pub fn load(path: &Path) -> io::Result<Self> {
        match std::fs::read_to_string(path) {
            Ok(text) => VerdictCache::from_json(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            Err(error) if error.kind() == io::ErrorKind::NotFound => Ok(VerdictCache::new()),
            Err(error) => Err(error),
        }
    }

    /// Persists the cache to `path` (atomically: write-new then rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Parses a cache from its JSON form.  Entries recorded under a
    /// different format version or rewrite-rule library are discarded (the
    /// cache comes back empty but valid).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let version =
            doc.get("version").and_then(Value::as_int).ok_or("cache: missing `version`")?;
        let recorded_library = doc
            .get("rule_library_fingerprint")
            .and_then(Value::as_str)
            .and_then(Fingerprint::from_hex)
            .ok_or("cache: missing `rule_library_fingerprint`")?;
        let mut cache = VerdictCache::new();
        if version != i64::from(CACHE_FORMAT_VERSION) || recorded_library != cache.rule_library {
            // Format or rule-library drift: every cached verdict is stale.
            return Ok(cache);
        }
        let Some(Value::Object(entries)) = doc.get("entries") else {
            return Err("cache: missing `entries`".to_string());
        };
        for (name, entry) in entries {
            let fingerprint = entry
                .get("fingerprint")
                .and_then(Value::as_str)
                .and_then(Fingerprint::from_hex)
                .ok_or_else(|| format!("cache entry `{name}`: bad fingerprint"))?;
            let field = |key: &str| -> Result<i64, String> {
                entry
                    .get(key)
                    .and_then(Value::as_int)
                    .ok_or_else(|| format!("cache entry `{name}`: missing `{key}`"))
            };
            let verified = entry
                .get("verified")
                .and_then(Value::as_bool)
                .ok_or_else(|| format!("cache entry `{name}`: missing `verified`"))?;
            let failure = match entry.get("failure") {
                None | Some(Value::Null) => None,
                Some(Value::String(s)) => Some(s.clone()),
                Some(_) => return Err(format!("cache entry `{name}`: bad `failure`")),
            };
            let time_seconds = entry
                .get("time_seconds")
                .and_then(Value::as_float)
                .ok_or_else(|| format!("cache entry `{name}`: missing `time_seconds`"))?;
            cache.entries.insert(
                name.clone(),
                CacheEntry {
                    fingerprint,
                    pass_loc: field("pass_loc")? as usize,
                    subgoals: field("subgoals")? as usize,
                    verified,
                    failure,
                    time_seconds,
                },
            );
        }
        Ok(cache)
    }

    /// Serializes the cache.  Format:
    ///
    /// ```json
    /// {
    ///   "version": 1,
    ///   "rule_library_fingerprint": "16 hex digits",
    ///   "entries": {
    ///     "<pass name>": {
    ///       "fingerprint": "16 hex digits",
    ///       "pass_loc": 24, "subgoals": 4, "verified": true,
    ///       "failure": null, "time_seconds": 0.0012
    ///     }
    ///   }
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let entries: Vec<(String, Value)> = self
            .entries
            .iter()
            .map(|(name, entry)| {
                (
                    name.clone(),
                    Value::object(vec![
                        ("fingerprint", Value::String(entry.fingerprint.to_hex())),
                        ("pass_loc", Value::Int(entry.pass_loc as i64)),
                        ("subgoals", Value::Int(entry.subgoals as i64)),
                        ("verified", Value::Bool(entry.verified)),
                        (
                            "failure",
                            entry
                                .failure
                                .as_ref()
                                .map_or(Value::Null, |f| Value::String(f.clone())),
                        ),
                        ("time_seconds", Value::Float(entry.time_seconds)),
                    ]),
                )
            })
            .collect();
        Value::object(vec![
            ("version", Value::Int(i64::from(CACHE_FORMAT_VERSION))),
            ("rule_library_fingerprint", Value::String(self.rule_library.to_hex())),
            ("entries", Value::Object(entries)),
        ])
        .to_pretty()
    }

    /// Looks up a cached report for `name` under `fingerprint`, counting a
    /// hit or miss.  A stored entry with a different fingerprint is a miss
    /// (the obligation set changed; the entry will be overwritten by
    /// [`Self::record`]).
    pub fn lookup(&mut self, name: &str, fingerprint: Fingerprint) -> Option<PassReport> {
        match self.entries.get(name) {
            Some(entry) if entry.fingerprint == fingerprint => {
                self.hits += 1;
                Some(entry.report(name))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a freshly discharged report under its fingerprint.
    pub fn record(&mut self, fingerprint: Fingerprint, report: &PassReport) {
        self.entries.insert(
            report.name.clone(),
            CacheEntry {
                fingerprint,
                pass_loc: report.pass_loc,
                subgoals: report.subgoals,
                verified: report.verified,
                failure: report.failure.clone(),
                time_seconds: report.time_seconds,
            },
        );
    }

    /// Cache hits since construction or the last [`Self::reset_stats`].
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache misses since construction or the last [`Self::reset_stats`].
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Clears the hit/miss counters (e.g. between a cold and a warm run).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache stores no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The rewrite-rule library fingerprint the entries are bound to.
    pub fn rule_library_fingerprint(&self) -> Fingerprint {
        self.rule_library
    }

    /// Test-only handle used to simulate fingerprint drift: overwrites the
    /// stored fingerprint of `name`, as if the pass's obligation generator
    /// had changed since the verdict was recorded.
    #[doc(hidden)]
    pub fn corrupt_fingerprint_for_test(&mut self, name: &str) -> bool {
        match self.entries.get_mut(name) {
            Some(entry) => {
                entry.fingerprint = Fingerprint(!entry.fingerprint.0);
                true
            }
            None => false,
        }
    }
}

impl Default for VerdictCache {
    fn default() -> Self {
        VerdictCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::verified_passes;

    fn sample_report(name: &str) -> PassReport {
        PassReport {
            name: name.to_string(),
            pass_loc: 24,
            subgoals: 4,
            time_seconds: 0.001,
            verified: true,
            failure: None,
        }
    }

    #[test]
    fn cache_json_round_trips() {
        let mut cache = VerdictCache::new();
        cache.record(Fingerprint(0xdead_beef), &sample_report("CXCancellation"));
        let mut failing = sample_report("GateDirection");
        failing.verified = false;
        failing.failure = Some("branch \"x\": counterexample\nwire 0".to_string());
        cache.record(Fingerprint(7), &failing);
        let text = cache.to_json();
        let back = VerdictCache::from_json(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.entries, cache.entries);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn lookup_hits_only_on_matching_fingerprints() {
        let mut cache = VerdictCache::new();
        cache.record(Fingerprint(1), &sample_report("CXCancellation"));
        assert!(cache.lookup("CXCancellation", Fingerprint(1)).is_some());
        assert!(cache.lookup("CXCancellation", Fingerprint(2)).is_none());
        assert!(cache.lookup("Unknown", Fingerprint(1)).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        cache.reset_stats();
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn version_or_library_drift_discards_entries() {
        let mut cache = VerdictCache::new();
        cache.record(Fingerprint(1), &sample_report("CXCancellation"));
        let stale_version = cache.to_json().replace("\"version\": 1", "\"version\": 99");
        assert!(VerdictCache::from_json(&stale_version).unwrap().is_empty());
        let fp = cache.rule_library_fingerprint().to_hex();
        let stale_library = cache.to_json().replace(&fp, &Fingerprint(!0).to_hex());
        assert!(VerdictCache::from_json(&stale_library).unwrap().is_empty());
    }

    #[test]
    fn malformed_cache_files_are_rejected() {
        assert!(VerdictCache::from_json("{}").is_err());
        assert!(VerdictCache::from_json("not json").is_err());
        let missing_entries = format!(
            "{{\"version\": {CACHE_FORMAT_VERSION}, \"rule_library_fingerprint\": \"{}\"}}",
            VerdictCache::new().rule_library_fingerprint().to_hex()
        );
        assert!(VerdictCache::from_json(&missing_entries).is_err());
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("giallar-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("cache-{}.json", std::process::id()));
        let mut cache = VerdictCache::new();
        cache.record(Fingerprint(42), &sample_report("CXCancellation"));
        cache.save(&path).unwrap();
        let back = VerdictCache::load(&path).unwrap();
        assert_eq!(back.len(), 1);
        std::fs::remove_file(&path).unwrap();
        // Missing files load as an empty cache.
        assert!(VerdictCache::load(&path).unwrap().is_empty());
    }

    #[test]
    fn pass_fingerprints_are_stable_and_distinct() {
        let passes = verified_passes();
        let library = qc_symbolic::rule_library_fingerprint();
        let mut fingerprints = Vec::new();
        for pass in &passes {
            let obligations = (pass.obligations)();
            let first = pass_fingerprint(pass, &obligations, library);
            let second = pass_fingerprint(pass, &(pass.obligations)(), library);
            assert_eq!(first, second, "{} fingerprint is unstable", pass.name);
            // A different rule library must shift every fingerprint.
            assert_ne!(first, pass_fingerprint(pass, &obligations, Fingerprint(!library.0)));
            fingerprints.push(first);
        }
        // Passes sharing an obligation generator still get distinct
        // fingerprints because the pass metadata is folded in.
        let mut unique = fingerprints.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), fingerprints.len());
    }
}
