//! The incremental verification cache, grained per proof obligation.
//!
//! Giallar's pitch is push-button *re*-verification on every compiler change
//! (§1 of the paper).  PR 2 cached verdicts per pass, which re-discharged a
//! whole pass when a single branch of its loop body changed.  Format v2
//! re-grains the cache to **one entry per proof obligation**, keyed by a
//! stable content fingerprint of everything an obligation's verdict depends
//! on:
//!
//! * the obligation's canonical form (see
//!   [`crate::serialize::obligation_canonical_form`]) — description plus
//!   goal, injective on goals by construction,
//! * the rewrite-rule library fingerprint of
//!   [`qc_symbolic::rule_library_fingerprint`] — a verdict is only valid
//!   for the rule library it was discharged under, and
//! * the id of the [`crate::backend::SolverBackend`] that discharged it —
//!   verdicts from the reference backend and the production backend are
//!   separate entries, so a differential `--backend reference` run never
//!   poisons (or is answered by) the default entries.
//!
//! [`crate::verifier::verify_all_passes_cached`] consults the cache per
//! obligation and re-discharges only obligations whose fingerprint changed:
//! a pass with one edited branch re-checks exactly that branch.  Hit/miss
//! statistics are tracked globally and per pass ([`VerdictCache::pass_stats`]).
//! The cache persists to a JSON file (see [`VerdictCache::to_json`]); a v1
//! (pass-grained) file loads as an empty v2 cache — the old entries cannot
//! answer obligation-grained queries, so migration is a clean cold start,
//! never an error.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use smtlite::{FaultSite, Fingerprint, FingerprintBuilder, Verdict};

use crate::json::{self, Value};
use crate::obligation::ProofObligation;
use crate::serialize::obligation_canonical_form;

/// Version of the cache file format; bump on any breaking schema change so
/// stale files are discarded instead of misread.  v1 was pass-grained; v2 is
/// obligation-grained.
pub const CACHE_FORMAT_VERSION: u32 = 2;

/// The stable fingerprint of one proof obligation under one rule library,
/// one discharging backend, and one discharge context — the cache key.
///
/// `register_width` is the solver register the obligation is discharged
/// over: the widest equivalence goal of its pass (see
/// [`crate::verifier::pass_register_width`]) for circuit-equivalence goals,
/// and `0` for arithmetic/trivial goals, whose discharge never touches a
/// register.  Folding it in keeps cached verdicts — including the exact
/// counterexample text, which mentions register wires — a faithful replay
/// of what a fresh discharge in the same pass context would produce, even
/// when an identical obligation appears in passes of different widths.
pub fn obligation_fingerprint(
    obligation: &ProofObligation,
    rule_library: Fingerprint,
    backend_id: &str,
    register_width: usize,
) -> Fingerprint {
    let mut builder = FingerprintBuilder::new();
    builder.write_str("giallar-obligation");
    builder.write_u64(u64::from(CACHE_FORMAT_VERSION));
    builder.write_u64(rule_library.0);
    builder.write_str(backend_id);
    builder.write_u64(register_width as u64);
    builder.write_str(&obligation_canonical_form(obligation));
    builder.finish()
}

/// One cached verdict.  Mirrors [`smtlite::Verdict`] with owned explanation
/// text so a warm run reproduces failure reports byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedVerdict {
    /// The obligation was discharged.
    Proved,
    /// The obligation failed with a counterexample explanation.
    Refuted {
        /// The solver's counterexample description.
        explanation: String,
        /// Structured fault coordinates, when the discharging layer could
        /// localise the failure (see [`smtlite::FaultSite`]).
        site: Option<FaultSite>,
    },
    /// The solver could not decide the obligation.
    Unknown {
        /// Why the solver gave up.
        reason: String,
    },
}

impl CachedVerdict {
    /// Captures a solver verdict for storage.
    pub fn from_verdict(verdict: &Verdict) -> Self {
        match verdict {
            Verdict::Proved => CachedVerdict::Proved,
            Verdict::Refuted { explanation, site } => {
                CachedVerdict::Refuted { explanation: explanation.clone(), site: *site }
            }
            Verdict::Unknown { reason } => CachedVerdict::Unknown { reason: reason.clone() },
        }
    }

    /// Reconstructs the solver verdict a stored entry stands for.
    pub fn to_verdict(&self) -> Verdict {
        match self {
            CachedVerdict::Proved => Verdict::Proved,
            CachedVerdict::Refuted { explanation, site } => {
                Verdict::Refuted { explanation: explanation.clone(), site: *site }
            }
            CachedVerdict::Unknown { reason } => Verdict::Unknown { reason: reason.clone() },
        }
    }

    /// Whether the entry records a proof.
    pub fn is_proved(&self) -> bool {
        matches!(self, CachedVerdict::Proved)
    }

    pub(crate) fn to_json_value(&self) -> Value {
        match self {
            CachedVerdict::Proved => {
                Value::object(vec![("verdict", Value::String("proved".to_string()))])
            }
            CachedVerdict::Refuted { explanation, site } => {
                let mut members = vec![
                    ("verdict", Value::String("refuted".to_string())),
                    ("explanation", Value::String(explanation.clone())),
                ];
                if let Some(site) = site {
                    members.push(("site", fault_site_to_json(site)));
                }
                Value::object(members)
            }
            CachedVerdict::Unknown { reason } => Value::object(vec![
                ("verdict", Value::String("unknown".to_string())),
                ("reason", Value::String(reason.clone())),
            ]),
        }
    }

    pub(crate) fn from_json_value(value: &Value) -> Result<Self, String> {
        let kind =
            value.get("verdict").and_then(Value::as_str).ok_or("cache entry: missing `verdict`")?;
        match kind {
            "proved" => Ok(CachedVerdict::Proved),
            "refuted" => Ok(CachedVerdict::Refuted {
                explanation: value
                    .get("explanation")
                    .and_then(Value::as_str)
                    .ok_or("cache entry: refuted without `explanation`")?
                    .to_string(),
                site: match value.get("site") {
                    None | Some(Value::Null) => None,
                    Some(site) => Some(fault_site_from_json(site)?),
                },
            }),
            "unknown" => Ok(CachedVerdict::Unknown {
                reason: value
                    .get("reason")
                    .and_then(Value::as_str)
                    .ok_or("cache entry: unknown without `reason`")?
                    .to_string(),
            }),
            other => Err(format!("cache entry: bad verdict `{other}`")),
        }
    }
}

/// Renders a structured fault site as a JSON object (`{"kind": ...}`).
/// Serialized only on refuted entries that carry a site, so caches and
/// certificates written before sites existed — and all proved entries —
/// keep their bytes.
pub fn fault_site_to_json(site: &FaultSite) -> Value {
    match site {
        FaultSite::Wire { wire } => Value::object(vec![
            ("kind", Value::String("wire".to_string())),
            ("wire", Value::Int(*wire as i64)),
        ]),
        FaultSite::WireMap { entry, len } => Value::object(vec![
            ("kind", Value::String("wire-map".to_string())),
            ("entry", entry.map_or(Value::Null, |e| Value::Int(e as i64))),
            ("len", Value::Int(*len as i64)),
        ]),
        FaultSite::Termination { consumed, kept } => Value::object(vec![
            ("kind", Value::String("termination".to_string())),
            ("consumed", Value::Int(*consumed)),
            ("kept", Value::Int(*kept)),
        ]),
    }
}

/// Parses a fault site rendered by [`fault_site_to_json`].
///
/// # Errors
///
/// Returns a description of the first malformed or missing member.
pub fn fault_site_from_json(value: &Value) -> Result<FaultSite, String> {
    let kind = value.get("kind").and_then(Value::as_str).ok_or("fault site: missing `kind`")?;
    let int = |name: &str| -> Result<i64, String> {
        value
            .get(name)
            .and_then(Value::as_int)
            .ok_or_else(|| format!("fault site: missing `{name}`"))
    };
    match kind {
        "wire" => Ok(FaultSite::Wire { wire: int("wire")? as usize }),
        "wire-map" => Ok(FaultSite::WireMap {
            entry: match value.get("entry") {
                None | Some(Value::Null) => None,
                Some(entry) => {
                    Some(entry.as_int().ok_or("fault site: non-integer `entry`")? as usize)
                }
            },
            len: int("len")? as usize,
        }),
        "termination" => {
            Ok(FaultSite::Termination { consumed: int("consumed")?, kept: int("kept")? })
        }
        other => Err(format!("fault site: bad kind `{other}`")),
    }
}

/// Hit/miss counts for one pass in one verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassCacheStats {
    /// Pass name.
    pub pass: String,
    /// Obligations answered from the cache.
    pub hits: usize,
    /// Obligations that had to be discharged.
    pub misses: usize,
}

/// A persistent map from obligation fingerprint to cached verdict, tagged
/// with the rule library fingerprint all entries were discharged under.
#[derive(Debug, Clone)]
pub struct VerdictCache {
    rule_library: Fingerprint,
    entries: BTreeMap<Fingerprint, CachedVerdict>,
    hits: usize,
    misses: usize,
    pass_stats: Vec<PassCacheStats>,
}

impl VerdictCache {
    /// An empty cache bound to the current rewrite-rule library.
    pub fn new() -> Self {
        VerdictCache {
            rule_library: qc_symbolic::rule_library_fingerprint(),
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
            pass_stats: Vec::new(),
        }
    }

    /// Loads a cache from `path`.  A missing file yields an empty cache; a
    /// file written under a different format version (including v1) or rule
    /// library is discarded wholesale (every entry would be stale anyway).
    ///
    /// # Errors
    ///
    /// Returns an error for unreadable files or unparseable JSON.
    pub fn load(path: &Path) -> io::Result<Self> {
        match std::fs::read_to_string(path) {
            Ok(text) => VerdictCache::from_json(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            Err(error) if error.kind() == io::ErrorKind::NotFound => Ok(VerdictCache::new()),
            Err(error) => Err(error),
        }
    }

    /// Loads a cache from `path`, recovering from corruption: a missing file
    /// is an empty cache, and an unreadable or unparseable file comes back
    /// as an empty cache plus a warning describing what was discarded (the
    /// next save overwrites the corrupt file).  This is the CLI entry point —
    /// a damaged cache must cost a cold run, not a failed verification.
    pub fn load_lenient(path: &Path) -> (Self, Option<String>) {
        match VerdictCache::load(path) {
            Ok(cache) => (cache, None),
            Err(error) => (
                VerdictCache::new(),
                Some(format!(
                    "ignoring unreadable cache {} ({error}); starting empty",
                    path.display()
                )),
            ),
        }
    }

    /// Persists the cache to `path` atomically: the JSON is written to a
    /// temporary file *unique to this save* and renamed into place, so a
    /// reader (or [`Self::load_lenient`]) can never observe a torn file.
    ///
    /// The temporary name folds in the process id and a per-process
    /// counter.  A *fixed* temporary name (the obvious `cache.tmp`) is not
    /// atomic under concurrency: with a daemon and a CLI run saving the
    /// same path, one writer can truncate the shared temporary file while
    /// the other is about to rename it, publishing a half-written cache.
    /// Unique temporaries make every rename the rename of a fully written
    /// file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (the temporary file is removed on a
    /// failed rename).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        static SAVE_SEQUENCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let sequence = SAVE_SEQUENCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp.{}.{}", std::process::id(), sequence));
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Parses a cache from its JSON form.  Entries recorded under a
    /// different format version (v1 files auto-migrate this way) or
    /// rewrite-rule library are discarded: the cache comes back empty but
    /// valid.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let version =
            doc.get("version").and_then(Value::as_int).ok_or("cache: missing `version`")?;
        let recorded_library = doc
            .get("rule_library_fingerprint")
            .and_then(Value::as_str)
            .and_then(Fingerprint::from_hex)
            .ok_or("cache: missing `rule_library_fingerprint`")?;
        let mut cache = VerdictCache::new();
        if version != i64::from(CACHE_FORMAT_VERSION) || recorded_library != cache.rule_library {
            // Format drift (a v1 pass-grained file, or a future v3) or
            // rule-library drift: every cached verdict is stale.  Migration
            // is a clean cold start, never an error.
            return Ok(cache);
        }
        let Some(Value::Object(entries)) = doc.get("entries") else {
            return Err("cache: missing `entries`".to_string());
        };
        for (key, entry) in entries {
            let fingerprint = Fingerprint::from_hex(key)
                .ok_or_else(|| format!("cache entry `{key}`: bad fingerprint key"))?;
            cache.entries.insert(fingerprint, CachedVerdict::from_json_value(entry)?);
        }
        Ok(cache)
    }

    /// Serializes the cache.  Format:
    ///
    /// ```json
    /// {
    ///   "version": 2,
    ///   "rule_library_fingerprint": "16 hex digits",
    ///   "entries": {
    ///     "<16-hex obligation fingerprint>": { "verdict": "proved" },
    ///     "<16-hex obligation fingerprint>": {
    ///       "verdict": "refuted", "explanation": "counterexample …"
    ///     }
    ///   }
    /// }
    /// ```
    ///
    /// Entry keys are [`obligation_fingerprint`]s — the backend id and rule
    /// library are folded into the key, so one file can hold verdicts from
    /// several backends side by side.
    pub fn to_json(&self) -> String {
        let entries: Vec<(String, Value)> = self
            .entries
            .iter()
            .map(|(fingerprint, verdict)| (fingerprint.to_hex(), verdict.to_json_value()))
            .collect();
        Value::object(vec![
            ("version", Value::Int(i64::from(CACHE_FORMAT_VERSION))),
            ("rule_library_fingerprint", Value::String(self.rule_library.to_hex())),
            ("entries", Value::Object(entries)),
        ])
        .to_pretty()
    }

    /// Looks up an entry without touching the hit/miss counters.  The
    /// parallel verification phase reads a shared snapshot through this and
    /// reports stats through [`Self::note_pass`] afterwards, keeping the
    /// counters deterministic regardless of thread scheduling.
    pub fn peek(&self, fingerprint: Fingerprint) -> Option<&CachedVerdict> {
        self.entries.get(&fingerprint)
    }

    /// Looks up an entry, counting a hit or miss.
    pub fn lookup(&mut self, fingerprint: Fingerprint) -> Option<CachedVerdict> {
        match self.entries.get(&fingerprint) {
            Some(entry) => {
                self.hits += 1;
                Some(entry.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a freshly discharged verdict under its fingerprint.
    pub fn record(&mut self, fingerprint: Fingerprint, verdict: CachedVerdict) {
        self.entries.insert(fingerprint, verdict);
    }

    /// Removes one entry (e.g. to force a targeted re-check), returning
    /// whether it existed.  From the cache's point of view this is exactly
    /// what editing that obligation's canonical form does: the next run
    /// misses on it and re-discharges only it.
    pub fn invalidate(&mut self, fingerprint: Fingerprint) -> bool {
        self.entries.remove(&fingerprint).is_some()
    }

    /// Folds one pass's hit/miss counts into the totals and the per-pass
    /// statistics (in verification order).
    pub fn note_pass(&mut self, pass: &str, hits: usize, misses: usize) {
        self.hits += hits;
        self.misses += misses;
        self.pass_stats.push(PassCacheStats { pass: pass.to_string(), hits, misses });
    }

    /// Obligation-level cache hits since construction or the last
    /// [`Self::reset_stats`].
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Obligation-level cache misses since construction or the last
    /// [`Self::reset_stats`].
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Per-pass hit/miss statistics for the runs since construction or the
    /// last [`Self::reset_stats`], in verification order.
    pub fn pass_stats(&self) -> &[PassCacheStats] {
        &self.pass_stats
    }

    /// Clears the hit/miss counters and per-pass statistics (e.g. between a
    /// cold and a warm run).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.pass_stats.clear();
    }

    /// Iterates over the stored entries in fingerprint order (used by
    /// [`crate::shard::ShardedVerdictCache::from_cache`] to warm-start the
    /// resident service from a persisted file).
    pub fn entries(&self) -> impl Iterator<Item = (Fingerprint, &CachedVerdict)> + '_ {
        self.entries.iter().map(|(fingerprint, verdict)| (*fingerprint, verdict))
    }

    /// Number of stored entries.  Identical obligations appearing in
    /// several passes share one entry, so this can be smaller than the
    /// total obligation count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache stores no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The rewrite-rule library fingerprint the entries are bound to.
    pub fn rule_library_fingerprint(&self) -> Fingerprint {
        self.rule_library
    }
}

impl Default for VerdictCache {
    fn default() -> Self {
        VerdictCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendSelection, GoalClass};
    use crate::obligation::{Goal, ProofObligation};
    use crate::registry::verified_passes;

    fn sample_obligation(description: &str) -> ProofObligation {
        ProofObligation::new(description, Goal::TerminationDecrease { consumed: 2, kept: 1 })
    }

    #[test]
    fn cache_json_round_trips() {
        let mut cache = VerdictCache::new();
        cache.record(Fingerprint(0xdead_beef), CachedVerdict::Proved);
        cache.record(
            Fingerprint(7),
            CachedVerdict::Refuted {
                explanation: "branch \"x\": counterexample\nwire 0".to_string(),
                site: Some(FaultSite::Wire { wire: 0 }),
            },
        );
        cache.record(Fingerprint(9), CachedVerdict::Unknown { reason: "gave up".to_string() });
        let text = cache.to_json();
        let back = VerdictCache::from_json(&text).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.entries, cache.entries);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn lookup_counts_hits_and_misses_and_peek_does_not() {
        let mut cache = VerdictCache::new();
        cache.record(Fingerprint(1), CachedVerdict::Proved);
        assert!(cache.peek(Fingerprint(1)).is_some());
        assert!(cache.peek(Fingerprint(2)).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert!(cache.lookup(Fingerprint(1)).is_some());
        assert!(cache.lookup(Fingerprint(2)).is_none());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        cache.note_pass("CXCancellation", 3, 1);
        assert_eq!((cache.hits(), cache.misses()), (4, 2));
        assert_eq!(cache.pass_stats().len(), 1);
        assert_eq!(cache.pass_stats()[0].pass, "CXCancellation");
        cache.reset_stats();
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert!(cache.pass_stats().is_empty());
    }

    #[test]
    fn invalidate_removes_exactly_one_entry() {
        let mut cache = VerdictCache::new();
        cache.record(Fingerprint(1), CachedVerdict::Proved);
        cache.record(Fingerprint(2), CachedVerdict::Proved);
        assert!(cache.invalidate(Fingerprint(1)));
        assert!(!cache.invalidate(Fingerprint(1)));
        assert_eq!(cache.len(), 1);
        assert!(cache.peek(Fingerprint(2)).is_some());
    }

    #[test]
    fn version_or_library_drift_discards_entries() {
        let mut cache = VerdictCache::new();
        cache.record(Fingerprint(1), CachedVerdict::Proved);
        let stale_version = cache.to_json().replace("\"version\": 2", "\"version\": 99");
        assert!(VerdictCache::from_json(&stale_version).unwrap().is_empty());
        let fp = cache.rule_library_fingerprint().to_hex();
        let stale_library = cache.to_json().replace(&fp, &Fingerprint(!0).to_hex());
        assert!(VerdictCache::from_json(&stale_library).unwrap().is_empty());
    }

    #[test]
    fn v1_pass_grained_files_load_as_an_empty_v2_cache() {
        // The exact shape PR 2 wrote: version 1, entries keyed by pass name
        // with per-pass report fields.  It must migrate to empty, not error.
        let v1 = format!(
            r#"{{
  "version": 1,
  "rule_library_fingerprint": "{}",
  "entries": {{
    "CXCancellation": {{
      "fingerprint": "00000000deadbeef",
      "pass_loc": 24, "subgoals": 4, "verified": true,
      "failure": null, "time_seconds": 0.0012
    }}
  }}
}}"#,
            VerdictCache::new().rule_library_fingerprint().to_hex()
        );
        let migrated = VerdictCache::from_json(&v1).unwrap();
        assert!(migrated.is_empty(), "a v1 file is a clean cold start");
    }

    #[test]
    fn malformed_cache_files_are_rejected() {
        assert!(VerdictCache::from_json("{}").is_err());
        assert!(VerdictCache::from_json("not json").is_err());
        let missing_entries = format!(
            "{{\"version\": {CACHE_FORMAT_VERSION}, \"rule_library_fingerprint\": \"{}\"}}",
            VerdictCache::new().rule_library_fingerprint().to_hex()
        );
        assert!(VerdictCache::from_json(&missing_entries).is_err());
        let bad_key = format!(
            "{{\"version\": {CACHE_FORMAT_VERSION}, \"rule_library_fingerprint\": \"{}\", \
             \"entries\": {{\"nope\": {{\"verdict\": \"proved\"}}}}}}",
            VerdictCache::new().rule_library_fingerprint().to_hex()
        );
        assert!(VerdictCache::from_json(&bad_key).is_err());
    }

    #[test]
    fn save_and_load_round_trip_on_disk_and_lenient_load_recovers() {
        let dir = std::env::temp_dir().join("giallar-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("cache-{}.json", std::process::id()));
        let mut cache = VerdictCache::new();
        cache.record(Fingerprint(42), CachedVerdict::Proved);
        cache.save(&path).unwrap();
        let back = VerdictCache::load(&path).unwrap();
        assert_eq!(back.len(), 1);
        // A corrupt file errors on strict load and recovers on lenient load.
        std::fs::write(&path, "definitely { not json").unwrap();
        assert!(VerdictCache::load(&path).is_err());
        let (recovered, warning) = VerdictCache::load_lenient(&path);
        assert!(recovered.is_empty());
        assert!(warning.unwrap().contains("starting empty"));
        std::fs::remove_file(&path).unwrap();
        // Missing files load as an empty cache with no warning.
        assert!(VerdictCache::load(&path).unwrap().is_empty());
        let (empty, warning) = VerdictCache::load_lenient(&path);
        assert!(empty.is_empty());
        assert!(warning.is_none());
    }

    #[test]
    fn obligation_fingerprints_are_stable_and_sensitive() {
        let library = qc_symbolic::rule_library_fingerprint();
        let ob = sample_obligation("termination of branch 3");
        let first = obligation_fingerprint(&ob, library, "smtlite-arith", 0);
        assert_eq!(first, obligation_fingerprint(&ob, library, "smtlite-arith", 0));
        // The canonical form, the rule library, the backend id, and the
        // register width each shift the fingerprint.
        assert_ne!(
            first,
            obligation_fingerprint(
                &sample_obligation("termination of branch 4"),
                library,
                "smtlite-arith",
                0
            )
        );
        assert_ne!(first, obligation_fingerprint(&ob, Fingerprint(!library.0), "smtlite-arith", 0));
        assert_ne!(first, obligation_fingerprint(&ob, library, "reference", 0));
        assert_ne!(first, obligation_fingerprint(&ob, library, "smtlite-arith", 3));
    }

    #[test]
    fn registry_obligations_fingerprint_distinctly_per_canonical_form() {
        // Across the whole registry, two obligations collide exactly when
        // their canonical form and discharge context agree — the
        // fingerprint adds no collisions.
        let library = qc_symbolic::rule_library_fingerprint();
        let selection = BackendSelection::Default;
        let mut by_fingerprint: std::collections::BTreeMap<Fingerprint, String> =
            std::collections::BTreeMap::new();
        for pass in verified_passes() {
            let obligations = (pass.obligations)();
            let width = crate::verifier::pass_register_width(&obligations);
            for obligation in obligations {
                let class = GoalClass::of(&obligation.goal);
                let backend = selection.backend_id_for(class);
                let register = if class == GoalClass::CircuitEquivalence { width } else { 0 };
                let fingerprint = obligation_fingerprint(&obligation, library, backend, register);
                let canonical = format!(
                    "{register}:{}",
                    crate::serialize::obligation_canonical_form(&obligation)
                );
                if let Some(previous) = by_fingerprint.insert(fingerprint, canonical.clone()) {
                    assert_eq!(
                        previous, canonical,
                        "fingerprint collision between distinct obligations"
                    );
                }
            }
        }
        assert!(by_fingerprint.len() > 40, "registry should produce many distinct entries");
    }
}
