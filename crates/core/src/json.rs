//! A minimal JSON document model with a parser and pretty-printer.
//!
//! The workspace vendors a no-op `serde` shim (the build environment has no
//! network access), so the artifacts this repository emits — the incremental
//! verification cache, the CLI's `--format json` reports, the committed
//! `BENCH_*.json` files — are built on this module instead.  It implements
//! the full JSON grammar except for exotic number forms: numbers are kept as
//! either `i64` or `f64`, which covers every value the verifier produces.
//!
//! Object members preserve insertion order so that serialization is
//! deterministic and the committed artifacts are byte-stable.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (JSON numbers without fraction or exponent).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; members keep insertion order for deterministic output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn object(members: Vec<(&str, Value)>) -> Value {
        Value::Object(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a member of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64`, when it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen losslessly for small values).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a bool, when it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serializes the value as pretty-printed JSON (2-space indent, stable
    /// member order) with a trailing newline, the format used by every
    /// committed artifact.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes the value as single-line JSON (no newlines, `", "` and
    /// `": "` separators elided to `,`/`:`), the framing used by the
    /// line-delimited `giallar-serve` wire protocol where one message
    /// must occupy exactly one line.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::Float(v) => out.push_str(&format_float(*v)),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::Float(v) => out.push_str(&format_float(*v)),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.to_pretty().trim_end())
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Formats a float so that it parses back to the identical bit pattern
/// (Rust's shortest round-trip representation), ensuring a fraction or
/// exponent is present so the reader keeps it a float.
fn format_float(v: f64) -> String {
    if !v.is_finite() {
        // JSON has no Inf/NaN; the verifier never produces them, but don't
        // emit invalid documents if one sneaks in.
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error, with its
/// byte offset.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing characters at byte {}", parser.pos));
    }
    Ok(value)
}

/// Nesting ceiling for the recursive-descent parser: far deeper than any
/// document this workspace produces, shallow enough that a corrupted or
/// hostile cache file returns a parse error instead of overflowing the
/// stack (callers like `giallar verify --cache` recover from errors).
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        if self.depth >= MAX_PARSE_DEPTH {
            return Err(format!("nesting deeper than {MAX_PARSE_DEPTH} at byte {}", self.pos));
        }
        self.depth += 1;
        let value = self.parse_value_inner();
        self.depth -= 1;
        value
    }

    fn parse_value_inner(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(format!("unexpected `{}` at byte {}", other as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|e| format!("bad number: {e}"))
        } else {
            text.parse::<i64>().map(Value::Int).map_err(|e| format!("bad number: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Value::object(vec![
            ("name", Value::String("CXCancellation".to_string())),
            ("subgoals", Value::Int(4)),
            ("time", Value::Float(0.25)),
            ("verified", Value::Bool(true)),
            ("failure", Value::Null),
            ("tags", Value::Array(vec![Value::String("a\"b\\c\n".to_string()), Value::Int(-3)])),
            ("empty_list", Value::Array(vec![])),
            ("empty_obj", Value::Object(vec![])),
        ]);
        let text = doc.to_pretty();
        assert_eq!(parse(&text).unwrap(), doc);
        // Serialization is deterministic.
        assert_eq!(parse(&text).unwrap().to_pretty(), text);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0, -2.5e-8, 123456.789, f64::MIN_POSITIVE] {
            let text = Value::Float(v).to_pretty();
            match parse(&text).unwrap() {
                Value::Float(back) => assert_eq!(back.to_bits(), v.to_bits(), "{text}"),
                other => panic!("expected float, got {other:?}"),
            }
        }
        // Whole-valued floats keep their floatness through a round trip.
        assert_eq!(parse("3.0").unwrap(), Value::Float(3.0));
        assert_eq!(parse("3").unwrap(), Value::Int(3));
    }

    #[test]
    fn compact_form_is_single_line_and_round_trips() {
        let doc = Value::object(vec![
            ("schema", Value::String("giallar-serve/v1".to_string())),
            ("note", Value::String("line\nbreak".to_string())),
            ("n", Value::Int(2)),
            ("t", Value::Float(0.5)),
            ("items", Value::Array(vec![Value::Bool(true), Value::Null])),
            ("empty", Value::Object(vec![])),
        ]);
        let line = doc.to_compact();
        assert!(!line.contains('\n'), "compact JSON must fit one wire line: {line:?}");
        assert_eq!(
            line,
            r#"{"schema":"giallar-serve/v1","note":"line\nbreak","n":2,"t":0.5,"items":[true,null],"empty":{}}"#
        );
        assert_eq!(parse(&line).unwrap(), doc);
    }

    #[test]
    fn accessors_work() {
        let doc = parse(r#"{"a": 1, "b": [true, null], "c": "x", "t": 0.5}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Value::as_int), Some(1));
        assert_eq!(doc.get("c").and_then(Value::as_str), Some("x"));
        assert_eq!(doc.get("t").and_then(Value::as_float), Some(0.5));
        assert_eq!(doc.get("a").and_then(Value::as_float), Some(1.0));
        let arr = doc.get("b").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert!(arr[1].is_null());
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_crash() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).unwrap_err().contains("nesting"));
        // Nesting inside the ceiling still parses.
        let ok = "[".repeat(64) + "1" + &"]".repeat(64);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let parsed = parse(r#""a\"b\\c\/d\n\tAé""#).unwrap();
        assert_eq!(parsed.as_str(), Some("a\"b\\c/d\n\tAé"));
        let control = Value::String("\u{0001}".to_string()).to_pretty();
        assert_eq!(parse(&control).unwrap().as_str(), Some("\u{0001}"));
    }
}
