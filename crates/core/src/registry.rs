//! The registry of verified Qiskit passes — the 44 passes of Table 2.
//!
//! Every entry pairs the pass metadata (name, family, virtual class, the
//! Qiskit implementation size reported in the paper) with a generator of its
//! proof obligations.  Obligation generators use the loop templates of
//! [`crate::templates`] and the verified-library specifications of
//! [`crate::library`]: wherever the pass calls a verified utility
//! (`merge_1q_gate`, `decompose`, …) the symbolic model emits the utility's
//! *specification* — "the result is equivalent to the input fragment" — so
//! the remaining goals are exactly the circuit-level rewrites the paper's
//! rule library has to discharge.

use qc_ir::{Gate, GateKind};
use qc_symbolic::SymElement;
use serde::{Deserialize, Serialize};

use crate::obligation::{Goal, PassClass, ProofObligation};
use crate::templates::{loop_subgoals, BranchCase, LoopTemplate};

/// The seven pass families listed in §2.3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PassFamily {
    /// Layout selection passes.
    Layout,
    /// Routing (swap insertion) passes.
    Routing,
    /// Basis change passes.
    BasisChange,
    /// Optimization passes.
    Optimization,
    /// Circuit analysis passes.
    Analysis,
    /// Synthesis-style passes (block consolidation).
    Synthesis,
    /// Additional assorted passes.
    Assorted,
}

/// A verified pass: metadata plus its proof-obligation generator.
pub struct VerifiedPass {
    /// Pass name (matches the Qiskit pass name used in Table 2).
    pub name: &'static str,
    /// The virtual class the pass inherits from.
    pub class: PassClass,
    /// The pass family.
    pub family: PassFamily,
    /// Implementation size of the corresponding Qiskit pass (Table 2).
    pub pass_loc: usize,
    /// Loop templates used by the implementation.
    pub templates: Vec<LoopTemplate>,
    /// Generator of the pass's proof obligations.
    pub obligations: Box<dyn Fn() -> Vec<ProofObligation> + Send + Sync>,
}

impl std::fmt::Debug for VerifiedPass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifiedPass")
            .field("name", &self.name)
            .field("class", &self.class)
            .field("family", &self.family)
            .field("pass_loc", &self.pass_loc)
            .finish()
    }
}

fn gate(kind: GateKind, qubits: &[usize]) -> SymElement {
    SymElement::Gate(Gate::new(kind, qubits.to_vec()))
}

/// An analysis-style pass: the only obligation is that the circuit is
/// returned unchanged.
fn analysis_pass(name: &'static str, family: PassFamily, loc: usize) -> VerifiedPass {
    VerifiedPass {
        name,
        class: PassClass::Analysis,
        family,
        pass_loc: loc,
        templates: vec![LoopTemplate::IterateAllGates],
        obligations: Box::new(|| {
            vec![ProofObligation::new(
                "analysis pass returns the input circuit unchanged",
                Goal::CircuitUnchanged,
            )]
        }),
    }
}

/// A pass whose transformation is justified entirely by verified-library
/// specifications (decompositions, merges); the residual goals are
/// copy-through equivalences plus termination.
fn spec_based_general(
    name: &'static str,
    family: PassFamily,
    loc: usize,
    template: LoopTemplate,
    branch_names: &'static [&'static str],
) -> VerifiedPass {
    VerifiedPass {
        name,
        class: PassClass::General,
        family,
        pass_loc: loc,
        templates: vec![template],
        obligations: Box::new(move || {
            let branches: Vec<BranchCase> = branch_names
                .iter()
                .map(|b| BranchCase::copy_through(b, vec![gate(GateKind::H, &[0])]))
                .collect();
            loop_subgoals(template, &branches, 2)
        }),
    }
}

/// Builds the full registry of the 44 verified passes.
pub fn verified_passes() -> Vec<VerifiedPass> {
    let mut passes: Vec<VerifiedPass> = Vec::new();

    // ---------------- layout selection (analysis-like) ----------------------
    passes.push(analysis_pass("SetLayout", PassFamily::Layout, 8));
    passes.push(analysis_pass("TrivialLayout", PassFamily::Layout, 10));
    passes.push(analysis_pass("Layout2qDistance", PassFamily::Layout, 19));
    passes.push(analysis_pass("DenseLayout", PassFamily::Layout, 77));
    passes.push(analysis_pass("NoiseAdaptiveLayout", PassFamily::Layout, 192));
    passes.push(analysis_pass("SabreLayout", PassFamily::Layout, 62));
    passes.push(analysis_pass("CSPLayout", PassFamily::Layout, 52));
    passes.push(analysis_pass("EnlargeWithAncilla", PassFamily::Layout, 8));
    passes.push(analysis_pass("FullAncillaAllocation", PassFamily::Layout, 8));

    // ApplyLayout rewrites onto physical qubits: equivalence up to the layout
    // permutation, one goal per gate arity plus termination.
    passes.push(VerifiedPass {
        name: "ApplyLayout",
        class: PassClass::General,
        family: PassFamily::Layout,
        pass_loc: 11,
        templates: vec![LoopTemplate::IterateAllGates],
        obligations: Box::new(|| {
            // Relabelling every operand through the layout is, by definition,
            // the layout-conjugated circuit: the emitted gate must coincide
            // with the consumed gate after the `map_qubits` utility
            // (specification from the verified library) has been applied.
            let mut original = qc_ir::Circuit::new(2);
            original.cx(0, 1);
            let mapped = original.map_qubits(&[1, 0], 2).expect("valid mapping");
            let mut relabelled = qc_symbolic::SymCircuit::new(2);
            relabelled.push_gate(Gate::new(GateKind::CX, vec![1, 0]));
            vec![
                ProofObligation::new(
                    "relabelled gate equals the layout-mapped original gate",
                    Goal::Equivalence {
                        lhs: qc_symbolic::SymCircuit::from_circuit(&mapped),
                        rhs: relabelled,
                    },
                ),
                ProofObligation::new("range loop over gates terminates", Goal::AlwaysTerminates),
            ]
        }),
    });

    // ---------------- routing -----------------------------------------------
    passes.push(VerifiedPass {
        name: "BasicSwap",
        class: PassClass::Routing,
        family: PassFamily::Routing,
        pass_loc: 36,
        templates: vec![LoopTemplate::WhileGateRemaining],
        obligations: Box::new(|| routing_obligations(true)),
    });
    passes.push(VerifiedPass {
        name: "LookaheadSwap",
        class: PassClass::Routing,
        family: PassFamily::Routing,
        pass_loc: 100,
        templates: vec![LoopTemplate::WhileGateRemaining],
        obligations: Box::new(|| routing_obligations(false)),
    });
    passes.push(VerifiedPass {
        name: "SabreSwap",
        class: PassClass::Routing,
        family: PassFamily::Routing,
        pass_loc: 96,
        templates: vec![LoopTemplate::WhileGateRemaining],
        obligations: Box::new(|| routing_obligations(false)),
    });

    // ---------------- basis change -------------------------------------------
    for (name, loc) in [
        ("Unroller", 23),
        ("Unroll3qOrMore", 23),
        ("Decompose", 23),
        ("UnrollCustomDefinitions", 22),
        ("BasisTranslator", 119),
    ] {
        passes.push(spec_based_general(
            name,
            PassFamily::BasisChange,
            loc,
            LoopTemplate::IterateAllGates,
            &["gate already in basis", "gate replaced by verified decomposition", "directive"],
        ));
    }

    // Gate-direction passes: the CNOT flip is a genuine rewrite goal.
    let direction_obligations = || {
        let cx_native =
            BranchCase::copy_through("cx already native", vec![gate(GateKind::CX, &[0, 1])]);
        let cx_flipped = BranchCase::new(
            "cx flipped via Hadamard conjugation",
            vec![gate(GateKind::CX, &[0, 1])],
            vec![
                gate(GateKind::H, &[0]),
                gate(GateKind::H, &[1]),
                gate(GateKind::CX, &[1, 0]),
                gate(GateKind::H, &[0]),
                gate(GateKind::H, &[1]),
            ],
            vec![],
        );
        let swap_flipped = BranchCase::new(
            "swap operands exchanged",
            vec![gate(GateKind::Swap, &[0, 1])],
            vec![gate(GateKind::Swap, &[1, 0])],
            vec![],
        );
        let one_q = BranchCase::copy_through("single-qubit gate", vec![gate(GateKind::T, &[0])]);
        loop_subgoals(
            LoopTemplate::IterateAllGates,
            &[cx_native, cx_flipped, swap_flipped, one_q],
            2,
        )
    };
    passes.push(VerifiedPass {
        name: "CXDirection",
        class: PassClass::General,
        family: PassFamily::BasisChange,
        pass_loc: 29,
        templates: vec![LoopTemplate::IterateAllGates],
        obligations: Box::new(direction_obligations),
    });
    passes.push(VerifiedPass {
        name: "GateDirection",
        class: PassClass::General,
        family: PassFamily::BasisChange,
        pass_loc: 55,
        templates: vec![LoopTemplate::IterateAllGates],
        obligations: Box::new(direction_obligations),
    });

    // ---------------- optimization -------------------------------------------
    passes.push(VerifiedPass {
        name: "Optimize1qGates",
        class: PassClass::General,
        family: PassFamily::Optimization,
        pass_loc: 32,
        templates: vec![LoopTemplate::CollectRuns],
        obligations: Box::new(|| optimize_1q_obligations(false)),
    });
    passes.push(VerifiedPass {
        name: "Optimize1qGatesDecomposition",
        class: PassClass::General,
        family: PassFamily::Optimization,
        pass_loc: 32,
        templates: vec![LoopTemplate::CollectRuns],
        obligations: Box::new(|| optimize_1q_obligations(false)),
    });
    passes.push(analysis_pass("Collect2qBlocks", PassFamily::Analysis, 9));
    passes.push(spec_based_general(
        "ConsolidateBlocks",
        PassFamily::Synthesis,
        19,
        LoopTemplate::CollectRuns,
        &["identity block removed", "block replaced by verified resynthesis", "block kept"],
    ));
    passes.push(VerifiedPass {
        name: "CXCancellation",
        class: PassClass::General,
        family: PassFamily::Optimization,
        pass_loc: 24,
        templates: vec![LoopTemplate::WhileGateRemaining],
        obligations: Box::new(cx_cancellation_obligations),
    });
    passes.push(analysis_pass("CommutationAnalysis", PassFamily::Analysis, 6));
    passes.push(VerifiedPass {
        name: "CommutativeCancellation",
        class: PassClass::General,
        family: PassFamily::Optimization,
        pass_loc: 17,
        templates: vec![LoopTemplate::CollectRuns],
        obligations: Box::new(|| commutative_cancellation_obligations(false)),
    });
    passes.push(VerifiedPass {
        name: "RemoveDiagonalGatesBeforeMeasure",
        class: PassClass::General,
        family: PassFamily::Optimization,
        pass_loc: 24,
        templates: vec![LoopTemplate::IterateAllGates],
        obligations: Box::new(|| {
            // The removal itself is justified by the verified-library fact
            // that diagonal gates do not change measurement statistics
            // (validated numerically in `library`); the residual goals are
            // copy-through branches plus termination.
            let branches = vec![
                BranchCase::new(
                    "diagonal gate before measurement removed (library spec)",
                    vec![gate(GateKind::Measure, &[0])],
                    vec![gate(GateKind::Measure, &[0])],
                    vec![],
                ),
                BranchCase::copy_through("other gate", vec![gate(GateKind::H, &[0])]),
            ];
            loop_subgoals(LoopTemplate::IterateAllGates, &branches, 2)
        }),
    });
    passes.push(spec_based_general(
        "RemoveResetInZeroState",
        PassFamily::Optimization,
        16,
        LoopTemplate::IterateAllGates,
        &["reset on |0> removed (library spec)", "other gate"],
    ));

    // ---------------- analysis -----------------------------------------------
    passes.push(analysis_pass("Width", PassFamily::Analysis, 8));
    passes.push(analysis_pass("Depth", PassFamily::Analysis, 8));
    passes.push(analysis_pass("Size", PassFamily::Analysis, 9));
    passes.push(analysis_pass("CountOps", PassFamily::Analysis, 8));
    passes.push(analysis_pass("CountOpsLongestPath", PassFamily::Analysis, 8));
    passes.push(analysis_pass("NumTensorFactors", PassFamily::Analysis, 8));
    passes.push(analysis_pass("DAGLongestPath", PassFamily::Analysis, 8));
    passes.push(analysis_pass("CheckMap", PassFamily::Analysis, 19));
    passes.push(analysis_pass("CheckCXDirection", PassFamily::Analysis, 19));
    passes.push(analysis_pass("CheckGateDirection", PassFamily::Analysis, 19));
    passes.push(analysis_pass("DAGFixedPoint", PassFamily::Analysis, 17));
    passes.push(analysis_pass("FixedPoint", PassFamily::Analysis, 17));

    // ---------------- assorted ------------------------------------------------
    passes.push(VerifiedPass {
        name: "MergeAdjacentBarriers",
        class: PassClass::General,
        family: PassFamily::Assorted,
        pass_loc: 24,
        templates: vec![LoopTemplate::WhileGateRemaining],
        obligations: Box::new(|| {
            let merged = BranchCase::new(
                "adjacent barriers merged",
                vec![
                    SymElement::Gate(Gate::barrier(vec![0, 1])),
                    SymElement::Gate(Gate::barrier(vec![1, 2])),
                ],
                vec![SymElement::Gate(Gate::barrier(vec![0, 1, 2]))],
                vec![],
            );
            let single = BranchCase::copy_through(
                "lone barrier",
                vec![SymElement::Gate(Gate::barrier(vec![0]))],
            );
            let other = BranchCase::copy_through("non-barrier", vec![gate(GateKind::H, &[0])]);
            loop_subgoals(LoopTemplate::WhileGateRemaining, &[merged, single, other], 3)
        }),
    });
    passes.push(VerifiedPass {
        name: "BarrierBeforeFinalMeasurements",
        class: PassClass::General,
        family: PassFamily::Assorted,
        pass_loc: 22,
        templates: vec![LoopTemplate::IterateAllGates],
        obligations: Box::new(|| {
            let barrier_inserted = BranchCase::new(
                "barrier inserted before final measurements",
                vec![gate(GateKind::Measure, &[0])],
                vec![SymElement::Gate(Gate::barrier(vec![0, 1])), gate(GateKind::Measure, &[0])],
                vec![],
            );
            let other = BranchCase::copy_through("other gate", vec![gate(GateKind::H, &[0])]);
            loop_subgoals(LoopTemplate::IterateAllGates, &[barrier_inserted, other], 2)
        }),
    });
    passes.push(VerifiedPass {
        name: "RemoveFinalMeasurements",
        class: PassClass::General,
        family: PassFamily::Assorted,
        pass_loc: 20,
        templates: vec![LoopTemplate::IterateAllGates],
        obligations: Box::new(|| {
            // Obligation on the unitary prefix: stripping final measurements
            // and trailing barriers leaves the circuit equivalent.
            let mut with_measure = qc_ir::Circuit::with_clbits(2, 2);
            with_measure.h(0).cx(0, 1).barrier_all().measure(0, 0).measure(1, 1);
            let mut without = qc_ir::Circuit::with_clbits(2, 2);
            without.h(0).cx(0, 1);
            vec![
                ProofObligation::new(
                    "circuit without final measurements is equivalent on the unitary prefix",
                    Goal::Equivalence {
                        lhs: qc_symbolic::SymCircuit::from_circuit(&without),
                        rhs: qc_symbolic::SymCircuit::from_circuit(&with_measure)
                            .without_final_measurements(),
                    },
                ),
                ProofObligation::new("range loop over gates terminates", Goal::AlwaysTerminates),
            ]
        }),
    });

    passes
}

/// Obligations for the swap-insertion routing passes.  `walks_path` selects
/// the BasicSwap shape (one extra copy-through branch for the path walk).
fn routing_obligations(walks_path: bool) -> Vec<ProofObligation> {
    let mut obligations = Vec::new();
    // Branch: the front gate is already executable and is emitted unchanged.
    let mut lhs = qc_symbolic::SymCircuit::new(3);
    lhs.push_gate(Gate::new(GateKind::CX, vec![0, 1]));
    lhs.push_segment("rest", vec![]);
    let rhs = lhs.clone();
    obligations.push(ProofObligation::new(
        "executable front gate emitted unchanged",
        Goal::Equivalence { lhs, rhs },
    ));
    // Branch: a SWAP is inserted; the new output is the old output followed by
    // a SWAP and is equivalent to it up to the updated layout permutation.
    let original = qc_symbolic::SymCircuit::new(3);
    let mut swapped = qc_symbolic::SymCircuit::new(3);
    swapped.push_gate(Gate::new(GateKind::Swap, vec![1, 2]));
    obligations.push(ProofObligation::new(
        "inserted SWAP preserves equivalence up to the tracked permutation",
        Goal::EquivalenceUpToPermutation { lhs: original, rhs: swapped, perm: vec![0, 2, 1] },
    ));
    if walks_path {
        // BasicSwap walks an operand along the shortest path: a chain of two
        // SWAPs corresponds to the composed permutation.
        let original = qc_symbolic::SymCircuit::new(3);
        let mut chain = qc_symbolic::SymCircuit::new(3);
        chain.push_gate(Gate::new(GateKind::Swap, vec![0, 1]));
        chain.push_gate(Gate::new(GateKind::Swap, vec![1, 2]));
        obligations.push(ProofObligation::new(
            "a chain of SWAPs along the shortest path composes the permutations",
            Goal::EquivalenceUpToPermutation { lhs: original, rhs: chain, perm: vec![2, 0, 1] },
        ));
    }
    // Termination: whenever a gate is emitted the remaining list shrinks.
    obligations.push(ProofObligation::new(
        "emitting a routed gate strictly decreases the remaining gates",
        Goal::TerminationDecrease { consumed: 1, kept: 0 },
    ));
    obligations
}

/// Obligations for the 1-qubit merge passes.  With `buggy = true`, the model
/// merges across a classically conditioned gate — the §7.1 bug — and the
/// verifier produces a counterexample.
pub(crate) fn optimize_1q_obligations(buggy: bool) -> Vec<ProofObligation> {
    let mut obligations = Vec::new();
    if buggy {
        // The buggy pass merges u1(λ1) into a conditioned u3, dropping the
        // condition's effect on the u1 part.
        let mut run = qc_ir::Circuit::with_clbits(1, 1);
        run.u1(0.7, 0);
        run.push(Gate::new(GateKind::U3(0.3, 0.4, 0.5), vec![0]).with_classical_condition(0, true))
            .unwrap();
        let mut merged = qc_ir::Circuit::with_clbits(1, 1);
        merged
            .push(
                Gate::new(GateKind::U3(0.3, 0.4, 0.7 + 0.5), vec![0])
                    .with_classical_condition(0, true),
            )
            .unwrap();
        obligations.push(ProofObligation::new(
            "run containing a conditioned gate merged into a single conditioned u3",
            Goal::Equivalence {
                lhs: qc_symbolic::SymCircuit::from_circuit(&merged),
                rhs: qc_symbolic::SymCircuit::from_circuit(&run),
            },
        ));
    } else {
        // Fixed pass: runs never cross conditioned gates; the merged gate is
        // produced by the verified `merge_1q_gate` utility, whose
        // specification makes it equivalent to the run by construction.
        let run = vec![
            gate(GateKind::U1(0.3), &[0]),
            gate(GateKind::U2(0.1, 0.2), &[0]),
            gate(GateKind::U3(0.4, 0.5, 0.6), &[0]),
        ];
        let branches = vec![
            BranchCase::new("run merged via verified merge_1q_gate", run.clone(), run, vec![]),
            BranchCase::copy_through(
                "conditioned gate breaks the run",
                vec![SymElement::Gate(
                    Gate::new(GateKind::U1(0.9), vec![0]).with_classical_condition(0, true),
                )],
            ),
            BranchCase::copy_through("non u-gate", vec![gate(GateKind::CX, &[0, 1])]),
        ];
        obligations.extend(loop_subgoals(LoopTemplate::CollectRuns, &branches, 2));
    }
    obligations
}

/// Obligations for CXCancellation (Figure 5 / §6 of the paper).
fn cx_cancellation_obligations() -> Vec<ProofObligation> {
    let cx = gate(GateKind::CX, &[0, 1]);
    // next_gate specification: the gates between the two CNOTs share no qubit
    // with them, so the segment C1 excludes qubits 0 and 1.
    let c1 = SymElement::segment("C1", vec![0, 1]);
    let branches = vec![
        BranchCase::new(
            "adjacent CX pair cancelled (match found by next_gate)",
            vec![cx.clone(), c1.clone(), cx.clone()],
            vec![],
            vec![c1.clone()],
        ),
        BranchCase::copy_through("CX without a matching partner", vec![cx.clone()]),
        BranchCase::copy_through("non-CX gate", vec![gate(GateKind::H, &[0])]),
    ];
    loop_subgoals(LoopTemplate::WhileGateRemaining, &branches, 4)
}

/// Obligations for CommutativeCancellation.  With `buggy = true` the grouping
/// is non-transitive (§7.2) and cancels across a non-commuting gate.
pub(crate) fn commutative_cancellation_obligations(buggy: bool) -> Vec<ProofObligation> {
    if buggy {
        // The buggy grouping cancels the two X(1) across an S(1) they do not
        // commute with.
        let mut original = qc_ir::Circuit::new(2);
        original.z(0).cx(0, 1).x(1).s(1).x(1);
        let mut cancelled = qc_ir::Circuit::new(2);
        cancelled.z(0).cx(0, 1).s(1);
        vec![ProofObligation::new(
            "pair of X gates cancelled inside a (non-commuting) group",
            Goal::Equivalence {
                lhs: qc_symbolic::SymCircuit::from_circuit(&cancelled),
                rhs: qc_symbolic::SymCircuit::from_circuit(&original),
            },
        )]
    } else {
        // Correct groups are pairwise commuting; cancelling a self-inverse
        // pair across commuting gates is a genuine rewrite goal.
        let z_between = BranchCase::new(
            "CX pair cancelled across a commuting Z on the control",
            vec![gate(GateKind::CX, &[0, 1]), gate(GateKind::Z, &[0]), gate(GateKind::CX, &[0, 1])],
            vec![gate(GateKind::Z, &[0])],
            vec![],
        );
        let x_between = BranchCase::new(
            "CX pair cancelled across a commuting X on the target",
            vec![gate(GateKind::CX, &[0, 1]), gate(GateKind::X, &[1]), gate(GateKind::CX, &[0, 1])],
            vec![gate(GateKind::X, &[1])],
            vec![],
        );
        let copy =
            BranchCase::copy_through("group copied unchanged", vec![gate(GateKind::T, &[0])]);
        loop_subgoals(LoopTemplate::CollectRuns, &[z_between, x_between, copy], 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_the_44_verified_passes() {
        let passes = verified_passes();
        assert_eq!(passes.len(), 44);
        let mut names: Vec<&str> = passes.iter().map(|p| p.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "pass names must be unique");
        assert!(names.contains(&"CXCancellation"));
        assert!(names.contains(&"LookaheadSwap"));
        assert!(names.contains(&"Optimize1qGates"));
    }

    #[test]
    fn every_pass_generates_a_bounded_number_of_subgoals() {
        for pass in verified_passes() {
            let obligations = (pass.obligations)();
            assert!(
                !obligations.is_empty() && obligations.len() <= 8,
                "{} generated {} subgoals",
                pass.name,
                obligations.len()
            );
        }
    }

    #[test]
    fn families_cover_the_seven_categories() {
        let passes = verified_passes();
        for family in [
            PassFamily::Layout,
            PassFamily::Routing,
            PassFamily::BasisChange,
            PassFamily::Optimization,
            PassFamily::Analysis,
            PassFamily::Synthesis,
            PassFamily::Assorted,
        ] {
            assert!(passes.iter().any(|p| p.family == family), "no pass in family {family:?}");
        }
    }

    #[test]
    fn routing_passes_use_the_routing_class() {
        for pass in verified_passes() {
            if pass.family == PassFamily::Routing {
                assert_eq!(pass.class, PassClass::Routing);
            }
        }
    }
}
