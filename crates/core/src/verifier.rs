//! The Giallar verifier: discharges a pass's proof obligations with the
//! symbolic circuit rewriting of `qc-symbolic` backed by `smtlite`, and
//! produces the per-pass reports that make up Table 2 of the paper.

use std::time::Instant;

use qc_symbolic::{check_equivalence, check_equivalence_with_permutation, Verdict};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use smtlite::{Context, Formula};

use crate::obligation::Goal;
use crate::registry::VerifiedPass;

/// The verification report for one pass (one row of Table 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PassReport {
    /// Pass name.
    pub name: String,
    /// Lines of code of the executable pass implementation (as reported by
    /// the registry; mirrors the "Pass LOC" column).
    pub pass_loc: usize,
    /// Number of subgoals generated after preprocessing.
    pub subgoals: usize,
    /// Wall-clock verification time in seconds.
    pub time_seconds: f64,
    /// Whether every subgoal was discharged.
    pub verified: bool,
    /// Description of the first failing subgoal plus the solver
    /// counterexample, when verification fails.
    pub failure: Option<String>,
}

/// Discharges a single goal.
pub fn discharge(goal: &Goal) -> Verdict {
    match goal {
        Goal::Equivalence { lhs, rhs } => check_equivalence(lhs, rhs),
        Goal::EquivalenceUpToPermutation { lhs, rhs, perm } => {
            check_equivalence_with_permutation(lhs, rhs, perm)
        }
        Goal::TerminationDecrease { consumed, kept } => {
            // |remain_new| = |rest| + kept  <  |remain_old| = |rest| + consumed
            let mut ctx = Context::new();
            let rest = ctx.arena_mut().app("len_rest", vec![]);
            let kept_term = ctx.arena_mut().int(*kept as i64);
            let consumed_term = ctx.arena_mut().int(*consumed as i64);
            let new_len = ctx.arena_mut().app("+", vec![rest, kept_term]);
            let old_len = ctx.arena_mut().app("+", vec![rest, consumed_term]);
            ctx.check(&Formula::Lt(new_len, old_len))
        }
        Goal::AlwaysTerminates => Verdict::Proved,
        Goal::CircuitUnchanged => Verdict::Proved,
    }
}

/// Verifies one pass: generates its proof obligations and discharges each.
pub fn verify_pass(pass: &VerifiedPass) -> PassReport {
    let start = Instant::now();
    let obligations = (pass.obligations)();
    let mut verified = true;
    let mut failure = None;
    for obligation in &obligations {
        match discharge(&obligation.goal) {
            Verdict::Proved => {}
            Verdict::Refuted { explanation } => {
                verified = false;
                failure = Some(format!("{}: {explanation}", obligation.description));
                break;
            }
            Verdict::Unknown { reason } => {
                verified = false;
                failure = Some(format!("{}: undecided ({reason})", obligation.description));
                break;
            }
        }
    }
    PassReport {
        name: pass.name.to_string(),
        pass_loc: pass.pass_loc,
        subgoals: obligations.len(),
        time_seconds: start.elapsed().as_secs_f64(),
        verified,
        failure,
    }
}

/// Verifies every pass in the registry (the full Table 2).
pub fn verify_all_passes() -> Vec<PassReport> {
    crate::registry::verified_passes().iter().map(verify_pass).collect()
}

/// Verifies every pass in the registry in parallel, one worker task per
/// chunk of the 44 registry entries.
///
/// Each pass's obligations are generated and discharged against a private
/// solver context with no state shared across passes — exactly the per-pass
/// modularity that §4 of the paper relies on — so the registry verifies
/// embarrassingly parallel.  Reports come back in registry order with the
/// same names and verdicts as [`verify_all_passes`]; only the recorded
/// per-pass wall-clock times may differ between the two.
pub fn verify_all_passes_parallel() -> Vec<PassReport> {
    crate::registry::verified_passes().par_iter().map(verify_pass).collect()
}

/// True when two report lists agree on everything except timing: same order,
/// same pass names, subgoal counts, verdicts, and failure descriptions.
pub fn reports_agree(lhs: &[PassReport], rhs: &[PassReport]) -> bool {
    lhs.len() == rhs.len()
        && lhs.iter().zip(rhs).all(|(a, b)| {
            a.name == b.name
                && a.pass_loc == b.pass_loc
                && a.subgoals == b.subgoals
                && a.verified == b.verified
                && a.failure == b.failure
        })
}

/// Renders reports as a text table shaped like Table 2 of the paper.
pub fn render_table2(reports: &[PassReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<32} {:>8} {:>10} {:>12}  {}\n",
        "Pass name", "Pass LOC", "#subgoals", "Verif. t(s)", "verified"
    ));
    let mut total_loc = 0usize;
    let mut total_subgoals = 0usize;
    let mut total_time = 0.0f64;
    for report in reports {
        out.push_str(&format!(
            "{:<32} {:>8} {:>10} {:>12.3}  {}\n",
            report.name,
            report.pass_loc,
            report.subgoals,
            report.time_seconds,
            if report.verified { "yes" } else { "NO" }
        ));
        total_loc += report.pass_loc;
        total_subgoals += report.subgoals;
        total_time += report.time_seconds;
    }
    out.push_str(&format!(
        "{:<32} {:>8} {:>10} {:>12.3}\n",
        "Sum", total_loc, total_subgoals, total_time
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obligation::Goal;
    use qc_ir::Circuit;
    use qc_symbolic::SymCircuit;

    #[test]
    fn discharge_handles_each_goal_kind() {
        // Equivalence.
        let mut lhs = Circuit::new(2);
        lhs.cx(0, 1).cx(0, 1);
        let rhs = Circuit::new(2);
        let goal = Goal::Equivalence {
            lhs: SymCircuit::from_circuit(&lhs),
            rhs: SymCircuit::from_circuit(&rhs),
        };
        assert!(discharge(&goal).is_proved());
        // Termination.
        assert!(discharge(&Goal::TerminationDecrease { consumed: 1, kept: 0 }).is_proved());
        assert!(discharge(&Goal::TerminationDecrease { consumed: 1, kept: 1 }).is_refuted());
        assert!(discharge(&Goal::AlwaysTerminates).is_proved());
        assert!(discharge(&Goal::CircuitUnchanged).is_proved());
        // Permutation equivalence.
        let mut original = Circuit::new(3);
        original.cx(0, 2);
        let mut routed = Circuit::new(3);
        routed.swap(1, 2).cx(0, 1);
        let goal = Goal::EquivalenceUpToPermutation {
            lhs: SymCircuit::from_circuit(&original),
            rhs: SymCircuit::from_circuit(&routed),
            perm: vec![0, 2, 1],
        };
        assert!(discharge(&goal).is_proved());
    }

    #[test]
    fn parallel_verification_matches_sequential() {
        let sequential = verify_all_passes();
        let parallel = verify_all_passes_parallel();
        assert_eq!(sequential.len(), 44);
        assert!(reports_agree(&sequential, &parallel));
    }

    #[test]
    fn reports_agree_detects_differences() {
        let report = PassReport {
            name: "CXCancellation".to_string(),
            pass_loc: 24,
            subgoals: 4,
            time_seconds: 0.01,
            verified: true,
            failure: None,
        };
        let mut flipped = report.clone();
        flipped.verified = false;
        // Timing differences are ignored; verdict differences are not.
        let mut retimed = report.clone();
        retimed.time_seconds = 99.0;
        assert!(reports_agree(std::slice::from_ref(&report), &[retimed]));
        assert!(!reports_agree(std::slice::from_ref(&report), &[flipped]));
        assert!(!reports_agree(&[report], &[]));
    }

    #[test]
    fn table_rendering_includes_totals() {
        let reports = vec![PassReport {
            name: "CXCancellation".to_string(),
            pass_loc: 24,
            subgoals: 4,
            time_seconds: 0.01,
            verified: true,
            failure: None,
        }];
        let table = render_table2(&reports);
        assert!(table.contains("CXCancellation"));
        assert!(table.contains("Sum"));
    }
}
