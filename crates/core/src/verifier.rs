//! The Giallar verifier: discharges a pass's proof obligations with the
//! symbolic circuit rewriting of `qc-symbolic` backed by `smtlite`, and
//! produces the per-pass reports that make up Table 2 of the paper.

use std::time::Instant;

use qc_symbolic::{EquivalenceChecker, Verdict};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use smtlite::{Context, Formula};

use crate::cache::{pass_fingerprint, VerdictCache};
use crate::json::Value;
use crate::obligation::{Goal, ProofObligation};
use crate::registry::VerifiedPass;

/// The verification report for one pass (one row of Table 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PassReport {
    /// Pass name.
    pub name: String,
    /// Lines of code of the executable pass implementation (as reported by
    /// the registry; mirrors the "Pass LOC" column).
    pub pass_loc: usize,
    /// Number of subgoals generated after preprocessing.
    pub subgoals: usize,
    /// Wall-clock verification time in seconds.
    pub time_seconds: f64,
    /// Whether every subgoal was discharged.
    pub verified: bool,
    /// Description of the first failing subgoal plus the solver
    /// counterexample, when verification fails.
    pub failure: Option<String>,
}

impl PassReport {
    /// Encodes the report as a JSON value.  With `include_timing = false`
    /// the machine-dependent `time_seconds` field is omitted, which makes
    /// the encoding deterministic (used by `--deterministic` CLI output and
    /// the committed benchmark artifacts).
    pub fn to_json_value(&self, include_timing: bool) -> Value {
        let mut members = vec![
            ("name", Value::String(self.name.clone())),
            ("pass_loc", Value::Int(self.pass_loc as i64)),
            ("subgoals", Value::Int(self.subgoals as i64)),
            ("verified", Value::Bool(self.verified)),
            ("failure", self.failure.as_ref().map_or(Value::Null, |f| Value::String(f.clone()))),
        ];
        if include_timing {
            members.push(("time_seconds", Value::Float(self.time_seconds)));
        }
        Value::object(members)
    }

    /// Decodes a report from the JSON produced by [`Self::to_json_value`].
    /// A missing `time_seconds` (deterministic encodings) decodes as `0.0`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json_value(value: &Value) -> Result<PassReport, String> {
        let name = value.get("name").and_then(Value::as_str).ok_or("report: missing `name`")?;
        let int_field = |key: &str| -> Result<usize, String> {
            value
                .get(key)
                .and_then(Value::as_int)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| format!("report: missing `{key}`"))
        };
        let verified =
            value.get("verified").and_then(Value::as_bool).ok_or("report: missing `verified`")?;
        let failure = match value.get("failure") {
            None | Some(Value::Null) => None,
            Some(Value::String(s)) => Some(s.clone()),
            Some(_) => return Err("report: bad `failure`".to_string()),
        };
        let time_seconds = match value.get("time_seconds") {
            None => 0.0,
            Some(v) => v.as_float().ok_or("report: bad `time_seconds`")?,
        };
        Ok(PassReport {
            name: name.to_string(),
            pass_loc: int_field("pass_loc")?,
            subgoals: int_field("subgoals")?,
            time_seconds,
            verified,
            failure,
        })
    }
}

/// Discharges a single goal with a fresh solver context (the one-shot API;
/// the verifier batches a pass's goals through a [`Discharger`]).
pub fn discharge(goal: &Goal) -> Verdict {
    Discharger::new().discharge(goal)
}

/// A reusable goal discharger: one solver context per pass instead of one
/// per goal.
///
/// Building a solver context is dominated by installing (compiling and
/// head-indexing) the full rewrite-rule library; a pass generates many
/// obligations that all need the same library, so the verifier creates one
/// `Discharger` per pass and feeds every goal through it.  The shared
/// equivalence checker grows lazily to the widest register seen, narrower
/// circuits are checked over the full register (extra wires are trivially
/// equal), and the arithmetic context for termination goals is likewise
/// shared.  Passes verify in parallel with no state shared *across* passes —
/// the per-pass modularity of §4 is untouched.
pub struct Discharger {
    checker: Option<EquivalenceChecker>,
    arith: Option<Context>,
}

impl Discharger {
    /// Creates a discharger with no solver state; contexts are built on
    /// first use.
    pub fn new() -> Self {
        Discharger { checker: None, arith: None }
    }

    /// The shared equivalence checker, grown to cover `num_qubits`.
    fn checker(&mut self, num_qubits: usize) -> &mut EquivalenceChecker {
        let rebuild = match &self.checker {
            Some(checker) => checker.num_qubits() < num_qubits,
            None => true,
        };
        if rebuild {
            self.checker = Some(EquivalenceChecker::new(num_qubits));
        }
        self.checker.as_mut().expect("checker just ensured")
    }

    /// Discharges one goal against the shared solver state.
    pub fn discharge(&mut self, goal: &Goal) -> Verdict {
        match goal {
            Goal::Equivalence { lhs, rhs } => {
                let n = lhs.num_qubits().max(rhs.num_qubits());
                self.checker(n).check(lhs, rhs)
            }
            Goal::EquivalenceUpToPermutation { lhs, rhs, perm } => {
                let n = lhs.num_qubits().max(rhs.num_qubits());
                self.checker(n).check_with_permutation(lhs, rhs, perm)
            }
            Goal::TerminationDecrease { consumed, kept } => {
                // |remain_new| = |rest| + kept  <  |remain_old| = |rest| + consumed
                let ctx = self.arith.get_or_insert_with(Context::new);
                let rest = ctx.arena_mut().app("len_rest", vec![]);
                let kept_term = ctx.arena_mut().int(*kept as i64);
                let consumed_term = ctx.arena_mut().int(*consumed as i64);
                let new_len = ctx.arena_mut().app("+", vec![rest, kept_term]);
                let old_len = ctx.arena_mut().app("+", vec![rest, consumed_term]);
                ctx.check(&Formula::Lt(new_len, old_len))
            }
            Goal::AlwaysTerminates => Verdict::Proved,
            Goal::CircuitUnchanged => Verdict::Proved,
        }
    }
}

impl Default for Discharger {
    fn default() -> Self {
        Discharger::new()
    }
}

/// Discharges a prepared obligation list and assembles the report.  Shared
/// by the uncached and cached verification paths so that both produce
/// identical reports (modulo timing) for the same obligations.
fn discharge_obligations(
    name: &str,
    pass_loc: usize,
    obligations: &[ProofObligation],
    start: Instant,
) -> PassReport {
    let mut verified = true;
    let mut failure = None;
    // Size the shared checker to the widest equivalence goal up front so the
    // rule library is installed exactly once per pass.
    let max_qubits = obligations
        .iter()
        .map(|o| match &o.goal {
            Goal::Equivalence { lhs, rhs } | Goal::EquivalenceUpToPermutation { lhs, rhs, .. } => {
                lhs.num_qubits().max(rhs.num_qubits())
            }
            _ => 0,
        })
        .max()
        .unwrap_or(0);
    let mut discharger = Discharger::new();
    if max_qubits > 0 {
        discharger.checker(max_qubits);
    }
    for obligation in obligations {
        match discharger.discharge(&obligation.goal) {
            Verdict::Proved => {}
            Verdict::Refuted { explanation } => {
                verified = false;
                failure = Some(format!("{}: {explanation}", obligation.description));
                break;
            }
            Verdict::Unknown { reason } => {
                verified = false;
                failure = Some(format!("{}: undecided ({reason})", obligation.description));
                break;
            }
        }
    }
    PassReport {
        name: name.to_string(),
        pass_loc,
        subgoals: obligations.len(),
        time_seconds: start.elapsed().as_secs_f64(),
        verified,
        failure,
    }
}

/// Verifies one pass: generates its proof obligations and discharges each.
pub fn verify_pass(pass: &VerifiedPass) -> PassReport {
    let start = Instant::now();
    let obligations = (pass.obligations)();
    discharge_obligations(pass.name, pass.pass_loc, &obligations, start)
}

/// Verifies one pass through the incremental cache: the obligations are
/// generated and fingerprinted, and only discharged when the fingerprint
/// misses (see [`crate::cache`]).
pub fn verify_pass_cached(pass: &VerifiedPass, cache: &mut VerdictCache) -> PassReport {
    let start = Instant::now();
    let obligations = (pass.obligations)();
    let fingerprint = pass_fingerprint(pass, &obligations, cache.rule_library_fingerprint());
    if let Some(report) = cache.lookup(pass.name, fingerprint) {
        return report;
    }
    let report = discharge_obligations(pass.name, pass.pass_loc, &obligations, start);
    cache.record(fingerprint, &report);
    report
}

/// Verifies every pass in the registry (the full Table 2).
pub fn verify_all_passes() -> Vec<PassReport> {
    crate::registry::verified_passes().iter().map(verify_pass).collect()
}

/// Verifies every pass in the registry in parallel, one worker task per
/// chunk of the 44 registry entries.
///
/// Each pass's obligations are generated and discharged against a private
/// solver context with no state shared across passes — exactly the per-pass
/// modularity that §4 of the paper relies on — so the registry verifies
/// embarrassingly parallel.  Reports come back in registry order with the
/// same names and verdicts as [`verify_all_passes`]; only the recorded
/// per-pass wall-clock times may differ between the two.
pub fn verify_all_passes_parallel() -> Vec<PassReport> {
    crate::registry::verified_passes().par_iter().map(verify_pass).collect()
}

/// Verifies every pass in the registry through the incremental cache:
/// obligations are generated and fingerprinted for all 44 passes, cache hits
/// are answered from the stored verdicts, and only the fingerprint-changed
/// passes are re-discharged (in parallel, like
/// [`verify_all_passes_parallel`]).  Reports come back in registry order and
/// are identical to [`verify_all_passes`] in everything but timing —
/// cross-check with [`reports_agree`].
pub fn verify_all_passes_cached(cache: &mut VerdictCache) -> Vec<PassReport> {
    verify_passes_cached(&crate::registry::verified_passes(), cache)
}

/// The cached verification path over an explicit pass list (used by the CLI
/// for `--pass` filtering).  See [`verify_all_passes_cached`].
pub fn verify_passes_cached(passes: &[VerifiedPass], cache: &mut VerdictCache) -> Vec<PassReport> {
    // A warm run discharges nothing, so its wall clock is dominated by
    // obligation generation + fingerprinting — run that phase in parallel
    // (it is pure per pass).  Cache lookups mutate the hit/miss counters and
    // stay sequential, in registry order, so the stats are deterministic.
    let library = cache.rule_library_fingerprint();
    let prepared: Vec<(Vec<ProofObligation>, smtlite::Fingerprint)> = passes
        .par_iter()
        .map(|pass| {
            let obligations = (pass.obligations)();
            let fingerprint = pass_fingerprint(pass, &obligations, library);
            (obligations, fingerprint)
        })
        .collect();
    let mut reports: Vec<Option<PassReport>> = Vec::with_capacity(passes.len());
    let mut misses: Vec<(usize, &VerifiedPass, Vec<ProofObligation>, smtlite::Fingerprint)> =
        Vec::new();
    for (index, (pass, (obligations, fingerprint))) in passes.iter().zip(prepared).enumerate() {
        match cache.lookup(pass.name, fingerprint) {
            Some(report) => reports.push(Some(report)),
            None => {
                reports.push(None);
                misses.push((index, pass, obligations, fingerprint));
            }
        }
    }
    let discharged: Vec<(usize, smtlite::Fingerprint, PassReport)> = misses
        .par_iter()
        .map(|(index, pass, obligations, fingerprint)| {
            let start = Instant::now();
            let report = discharge_obligations(pass.name, pass.pass_loc, obligations, start);
            (*index, *fingerprint, report)
        })
        .collect();
    for (index, fingerprint, report) in discharged {
        cache.record(fingerprint, &report);
        reports[index] = Some(report);
    }
    reports.into_iter().map(|r| r.expect("every pass produced a report")).collect()
}

/// True when two report lists agree on everything except timing: same order,
/// same pass names, subgoal counts, verdicts, and failure descriptions.
pub fn reports_agree(lhs: &[PassReport], rhs: &[PassReport]) -> bool {
    lhs.len() == rhs.len()
        && lhs.iter().zip(rhs).all(|(a, b)| {
            a.name == b.name
                && a.pass_loc == b.pass_loc
                && a.subgoals == b.subgoals
                && a.verified == b.verified
                && a.failure == b.failure
        })
}

/// Renders reports as a text table shaped like Table 2 of the paper.
pub fn render_table2(reports: &[PassReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<32} {:>8} {:>10} {:>12}  {}\n",
        "Pass name", "Pass LOC", "#subgoals", "Verif. t(s)", "verified"
    ));
    let mut total_loc = 0usize;
    let mut total_subgoals = 0usize;
    let mut total_time = 0.0f64;
    for report in reports {
        out.push_str(&format!(
            "{:<32} {:>8} {:>10} {:>12.3}  {}\n",
            report.name,
            report.pass_loc,
            report.subgoals,
            report.time_seconds,
            if report.verified { "yes" } else { "NO" }
        ));
        total_loc += report.pass_loc;
        total_subgoals += report.subgoals;
        total_time += report.time_seconds;
    }
    out.push_str(&format!(
        "{:<32} {:>8} {:>10} {:>12.3}\n",
        "Sum", total_loc, total_subgoals, total_time
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obligation::Goal;
    use qc_ir::Circuit;
    use qc_symbolic::SymCircuit;

    #[test]
    fn discharge_handles_each_goal_kind() {
        // Equivalence.
        let mut lhs = Circuit::new(2);
        lhs.cx(0, 1).cx(0, 1);
        let rhs = Circuit::new(2);
        let goal = Goal::Equivalence {
            lhs: SymCircuit::from_circuit(&lhs),
            rhs: SymCircuit::from_circuit(&rhs),
        };
        assert!(discharge(&goal).is_proved());
        // Termination.
        assert!(discharge(&Goal::TerminationDecrease { consumed: 1, kept: 0 }).is_proved());
        assert!(discharge(&Goal::TerminationDecrease { consumed: 1, kept: 1 }).is_refuted());
        assert!(discharge(&Goal::AlwaysTerminates).is_proved());
        assert!(discharge(&Goal::CircuitUnchanged).is_proved());
        // Permutation equivalence.
        let mut original = Circuit::new(3);
        original.cx(0, 2);
        let mut routed = Circuit::new(3);
        routed.swap(1, 2).cx(0, 1);
        let goal = Goal::EquivalenceUpToPermutation {
            lhs: SymCircuit::from_circuit(&original),
            rhs: SymCircuit::from_circuit(&routed),
            perm: vec![0, 2, 1],
        };
        assert!(discharge(&goal).is_proved());
    }

    #[test]
    fn parallel_verification_matches_sequential() {
        let sequential = verify_all_passes();
        let parallel = verify_all_passes_parallel();
        assert_eq!(sequential.len(), 44);
        assert!(reports_agree(&sequential, &parallel));
    }

    #[test]
    fn cached_verification_matches_uncached_and_hits_on_the_warm_run() {
        let uncached = verify_all_passes();
        let mut cache = VerdictCache::new();
        let cold = verify_all_passes_cached(&mut cache);
        assert!(reports_agree(&uncached, &cold));
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 44);
        cache.reset_stats();
        let warm = verify_all_passes_cached(&mut cache);
        assert!(reports_agree(&uncached, &warm));
        assert_eq!(cache.hits(), 44);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn fingerprint_drift_forces_redischarge_of_only_the_changed_pass() {
        let mut cache = VerdictCache::new();
        let cold = verify_all_passes_cached(&mut cache);
        assert!(cache.corrupt_fingerprint_for_test("CXCancellation"));
        cache.reset_stats();
        let warm = verify_all_passes_cached(&mut cache);
        assert!(reports_agree(&cold, &warm));
        assert_eq!(cache.hits(), 43);
        assert_eq!(cache.misses(), 1);
        // The re-discharge refreshed the entry: everything hits again.
        cache.reset_stats();
        let _ = verify_all_passes_cached(&mut cache);
        assert_eq!(cache.hits(), 44);
    }

    #[test]
    fn pass_report_json_round_trips() {
        let report = PassReport {
            name: "GateDirection".to_string(),
            pass_loc: 55,
            subgoals: 5,
            time_seconds: 0.125,
            verified: false,
            failure: Some("cx flipped: counterexample on wire 1".to_string()),
        };
        let timed = report.to_json_value(true).to_pretty();
        let back = PassReport::from_json_value(&crate::json::parse(&timed).unwrap()).unwrap();
        assert_eq!(back.name, report.name);
        assert_eq!(back.pass_loc, report.pass_loc);
        assert_eq!(back.subgoals, report.subgoals);
        assert_eq!(back.verified, report.verified);
        assert_eq!(back.failure, report.failure);
        assert_eq!(back.time_seconds.to_bits(), report.time_seconds.to_bits());
        // Deterministic form omits timing and decodes it as zero.
        let bare = report.to_json_value(false).to_pretty();
        assert!(!bare.contains("time_seconds"));
        let back = PassReport::from_json_value(&crate::json::parse(&bare).unwrap()).unwrap();
        assert_eq!(back.time_seconds, 0.0);
        assert!(reports_agree(std::slice::from_ref(&report), &[back]));
    }

    #[test]
    fn reports_agree_detects_differences() {
        let report = PassReport {
            name: "CXCancellation".to_string(),
            pass_loc: 24,
            subgoals: 4,
            time_seconds: 0.01,
            verified: true,
            failure: None,
        };
        let mut flipped = report.clone();
        flipped.verified = false;
        // Timing differences are ignored; verdict differences are not.
        let mut retimed = report.clone();
        retimed.time_seconds = 99.0;
        assert!(reports_agree(std::slice::from_ref(&report), &[retimed]));
        assert!(!reports_agree(std::slice::from_ref(&report), &[flipped]));
        assert!(!reports_agree(&[report], &[]));
    }

    #[test]
    fn table_rendering_includes_totals() {
        let reports = vec![PassReport {
            name: "CXCancellation".to_string(),
            pass_loc: 24,
            subgoals: 4,
            time_seconds: 0.01,
            verified: true,
            failure: None,
        }];
        let table = render_table2(&reports);
        assert!(table.contains("CXCancellation"));
        assert!(table.contains("Sum"));
    }
}
