//! The Giallar verifier: discharges a pass's proof obligations through the
//! goal-class-routed solver backends of [`crate::backend`] and produces the
//! per-pass reports that make up Table 2 of the paper.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use qc_symbolic::Verdict;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use smtlite::Fingerprint;

use crate::backend::{BackendRegistry, BackendSelection, GoalClass};
use crate::batch::{plan, BatchItem};
use crate::cache::{obligation_fingerprint, CachedVerdict, VerdictCache};
use crate::json::Value;
use crate::obligation::{Goal, ProofObligation};
use crate::registry::VerifiedPass;

/// The verification report for one pass (one row of Table 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PassReport {
    /// Pass name.
    pub name: String,
    /// Lines of code of the executable pass implementation (as reported by
    /// the registry; mirrors the "Pass LOC" column).
    pub pass_loc: usize,
    /// Number of subgoals generated after preprocessing.
    pub subgoals: usize,
    /// Wall-clock verification time in seconds.
    pub time_seconds: f64,
    /// Whether every subgoal was discharged.
    pub verified: bool,
    /// Description of the first failing subgoal plus the solver
    /// counterexample, when verification fails.
    pub failure: Option<String>,
}

impl PassReport {
    /// Encodes the report as a JSON value.  With `include_timing = false`
    /// the machine-dependent `time_seconds` field is omitted, which makes
    /// the encoding deterministic (used by `--deterministic` CLI output and
    /// the committed benchmark artifacts).
    pub fn to_json_value(&self, include_timing: bool) -> Value {
        let mut members = vec![
            ("name", Value::String(self.name.clone())),
            ("pass_loc", Value::Int(self.pass_loc as i64)),
            ("subgoals", Value::Int(self.subgoals as i64)),
            ("verified", Value::Bool(self.verified)),
            ("failure", self.failure.as_ref().map_or(Value::Null, |f| Value::String(f.clone()))),
        ];
        if include_timing {
            members.push(("time_seconds", Value::Float(self.time_seconds)));
        }
        Value::object(members)
    }

    /// Decodes a report from the JSON produced by [`Self::to_json_value`].
    /// A missing `time_seconds` (deterministic encodings) decodes as `0.0`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json_value(value: &Value) -> Result<PassReport, String> {
        let name = value.get("name").and_then(Value::as_str).ok_or("report: missing `name`")?;
        let int_field = |key: &str| -> Result<usize, String> {
            value
                .get(key)
                .and_then(Value::as_int)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| format!("report: missing `{key}`"))
        };
        let verified =
            value.get("verified").and_then(Value::as_bool).ok_or("report: missing `verified`")?;
        let failure = match value.get("failure") {
            None | Some(Value::Null) => None,
            Some(Value::String(s)) => Some(s.clone()),
            Some(_) => return Err("report: bad `failure`".to_string()),
        };
        let time_seconds = match value.get("time_seconds") {
            None => 0.0,
            Some(v) => v.as_float().ok_or("report: bad `time_seconds`")?,
        };
        Ok(PassReport {
            name: name.to_string(),
            pass_loc: int_field("pass_loc")?,
            subgoals: int_field("subgoals")?,
            time_seconds,
            verified,
            failure,
        })
    }
}

/// Discharges a single goal with fresh solver state under the default
/// backend routing (the one-shot API; the verifier batches a pass's goals
/// through a [`Discharger`]).
pub fn discharge(goal: &Goal) -> Verdict {
    Discharger::new().discharge(goal)
}

/// Discharges a single goal with fresh solver state under an explicit
/// backend selection.
pub fn discharge_with(goal: &Goal, selection: BackendSelection) -> Verdict {
    Discharger::with_selection(selection).discharge(goal)
}

/// A reusable goal discharger: one [`BackendRegistry`] — and therefore one
/// solver context per routed backend — per pass instead of one per goal.
///
/// Building equivalence solver state is dominated by installing (compiling
/// and head-indexing) the full rewrite-rule library; a pass generates many
/// obligations that all need the same library, so the verifier creates one
/// `Discharger` per pass and feeds every goal through it.  The registry's
/// equivalence backend grows lazily to the widest register seen (narrower
/// circuits are checked over the full register — extra wires are trivially
/// equal) and the arithmetic context for termination goals is likewise
/// shared.  Passes verify in parallel with no state shared *across* passes —
/// the per-pass modularity of §4 is untouched.
#[derive(Default)]
pub struct Discharger {
    registry: BackendRegistry,
}

impl Discharger {
    /// Creates a discharger with the default backend routing and no solver
    /// state; contexts are built on first use.
    pub fn new() -> Self {
        Discharger::default()
    }

    /// Creates a discharger routing goals per an explicit backend selection.
    pub fn with_selection(selection: BackendSelection) -> Self {
        Discharger { registry: BackendRegistry::new(selection) }
    }

    /// The backend selection this discharger routes with.
    pub fn selection(&self) -> BackendSelection {
        self.registry.selection()
    }

    /// Sizes the equivalence solver state for a pass up front so the rule
    /// library is installed exactly once (forwarded to every backend).
    pub fn prewarm(&mut self, max_qubits: usize) {
        self.registry.prewarm(max_qubits);
    }

    /// Discharges one goal against the shared solver state.
    pub fn discharge(&mut self, goal: &Goal) -> Verdict {
        self.registry.discharge(goal)
    }

    /// A snapshot clone of this discharger, prewarmed state included — the
    /// batched scheduler builds one prewarmed template per discharge group
    /// and fans snapshot clones out across worker threads, so the rule
    /// library is compiled once per group rather than once per worker.
    /// `None` when an installed backend cannot snapshot.
    pub fn snapshot(&self) -> Option<Discharger> {
        Some(Discharger { registry: self.registry.snapshot()? })
    }
}

/// The widest equivalence register among a pass's obligations (0 when the
/// pass has no equivalence goals).  This is the pass's **discharge
/// context**: backends prewarm their solver state to it, every equivalence
/// goal of the pass is checked over it, and it is folded into the cache key
/// of circuit-equivalence obligations
/// ([`crate::cache::obligation_fingerprint`]) so cached verdicts replay
/// exactly what a fresh discharge in the same context would produce.
pub fn pass_register_width(obligations: &[ProofObligation]) -> usize {
    obligations
        .iter()
        .map(|o| match &o.goal {
            Goal::Equivalence { lhs, rhs } | Goal::EquivalenceUpToPermutation { lhs, rhs, .. } => {
                lhs.num_qubits().max(rhs.num_qubits())
            }
            _ => 0,
        })
        .max()
        .unwrap_or(0)
}

/// Folds one verdict into the pass-level outcome; returns `false` when the
/// verdict fails the pass (the caller stops discharging, mirroring the
/// uncached early exit).
fn fold_verdict(
    verdict: Verdict,
    description: &str,
    verified: &mut bool,
    failure: &mut Option<String>,
) -> bool {
    match verdict {
        Verdict::Proved => true,
        Verdict::Refuted { explanation, .. } => {
            *verified = false;
            *failure = Some(format!("{description}: {explanation}"));
            false
        }
        Verdict::Unknown { reason } => {
            *verified = false;
            *failure = Some(format!("{description}: undecided ({reason})"));
            false
        }
    }
}

/// The pass-level outcome of folding an ordered verdict stream (see
/// [`fold_verdict_stream`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictFold {
    /// Whether every consumed verdict was [`Verdict::Proved`].
    pub verified: bool,
    /// The first failing subgoal's description plus counterexample (or
    /// undecidedness reason), when verification fails.
    pub failure: Option<String>,
    /// How many verdicts were consumed before stopping: the full stream
    /// when the pass verifies, or everything up to and including the first
    /// failure.
    pub consumed: usize,
}

/// Folds an ordered `(verdict, subgoal description)` stream into a
/// pass-level outcome with the verifier's walk semantics: consumption stops
/// at the first failing verdict, so items after a failure are never pulled
/// from the iterator.
///
/// This is the exact fold [`verify_pass`] and the cached paths apply —
/// exposed so the resident service (`giallar serve`) can replay it over
/// verdicts resolved from its sharded cache and produce reports
/// bit-identical to the CLI, including the failure text.  Side effects in
/// the iterator (counting a hit, recording a fresh verdict) run only for
/// obligations the walk actually reaches.
///
/// ```
/// use giallar_core::verifier::fold_verdict_stream;
/// use qc_symbolic::Verdict;
///
/// let verdicts = vec![
///     (Verdict::Proved, "branch 0".to_string()),
///     (Verdict::refuted("wire 1 flipped"), "branch 1".to_string()),
///     (Verdict::Proved, "never reached".to_string()),
/// ];
/// let fold = fold_verdict_stream(verdicts);
/// assert!(!fold.verified);
/// assert_eq!(fold.consumed, 2);
/// assert_eq!(fold.failure.as_deref(), Some("branch 1: wire 1 flipped"));
/// ```
pub fn fold_verdict_stream<I>(stream: I) -> VerdictFold
where
    I: IntoIterator<Item = (Verdict, String)>,
{
    let mut verified = true;
    let mut failure = None;
    let mut consumed = 0;
    for (verdict, description) in stream {
        consumed += 1;
        if !fold_verdict(verdict, &description, &mut verified, &mut failure) {
            break;
        }
    }
    VerdictFold { verified, failure, consumed }
}

/// Discharges a prepared obligation list and assembles the report.  Shared
/// by the uncached and cached verification paths so that both produce
/// identical reports (modulo timing) for the same obligations.
fn discharge_obligations(
    name: &str,
    pass_loc: usize,
    obligations: &[ProofObligation],
    start: Instant,
    selection: BackendSelection,
) -> PassReport {
    let mut verified = true;
    let mut failure = None;
    let mut discharger = Discharger::with_selection(selection);
    discharger.prewarm(pass_register_width(obligations));
    for obligation in obligations {
        let verdict = discharger.discharge(&obligation.goal);
        if !fold_verdict(verdict, &obligation.description, &mut verified, &mut failure) {
            break;
        }
    }
    PassReport {
        name: name.to_string(),
        pass_loc,
        subgoals: obligations.len(),
        time_seconds: start.elapsed().as_secs_f64(),
        verified,
        failure,
    }
}

/// Verifies one pass: generates its proof obligations and discharges each
/// under the default backend routing.
pub fn verify_pass(pass: &VerifiedPass) -> PassReport {
    verify_pass_with(pass, BackendSelection::Default)
}

/// Verifies one pass under an explicit backend selection.
pub fn verify_pass_with(pass: &VerifiedPass, selection: BackendSelection) -> PassReport {
    let start = Instant::now();
    let obligations = (pass.obligations)();
    discharge_obligations(pass.name, pass.pass_loc, &obligations, start, selection)
}

/// One pass's generated obligations paired with their cache keys (phase 1
/// of the cached verification pipeline).
type PreparedPass = (Vec<ProofObligation>, Vec<Fingerprint>);

/// The outcome of walking one pass's obligations against a cache snapshot:
/// the assembled report, the freshly discharged verdicts to fold back into
/// the cache, and the pass's hit/miss counts.
struct PassWalk {
    report: PassReport,
    fresh: Vec<(Fingerprint, CachedVerdict)>,
    hits: usize,
    misses: usize,
}

/// Walks one pass's obligations in order, answering from the cache snapshot
/// where possible and discharging the rest with a lazily created
/// [`Discharger`].  Discharge stops at the first failing verdict, exactly
/// like the uncached path — obligations after a failure are neither
/// discharged nor counted.
fn walk_pass_cached(
    pass: &VerifiedPass,
    obligations: &[ProofObligation],
    fingerprints: &[Fingerprint],
    cache: &VerdictCache,
    selection: BackendSelection,
) -> PassWalk {
    let start = Instant::now();
    let mut verified = true;
    let mut failure = None;
    let mut fresh: Vec<(Fingerprint, CachedVerdict)> = Vec::new();
    let mut hits = 0;
    let mut misses = 0;
    let mut discharger: Option<Discharger> = None;
    for (obligation, &fingerprint) in obligations.iter().zip(fingerprints) {
        let verdict = match cache.peek(fingerprint) {
            Some(cached) => {
                hits += 1;
                cached.to_verdict()
            }
            None => {
                misses += 1;
                let discharger = discharger.get_or_insert_with(|| {
                    let mut d = Discharger::with_selection(selection);
                    d.prewarm(pass_register_width(obligations));
                    d
                });
                let verdict = discharger.discharge(&obligation.goal);
                fresh.push((fingerprint, CachedVerdict::from_verdict(&verdict)));
                verdict
            }
        };
        if !fold_verdict(verdict, &obligation.description, &mut verified, &mut failure) {
            break;
        }
    }
    PassWalk {
        report: PassReport {
            name: pass.name.to_string(),
            pass_loc: pass.pass_loc,
            subgoals: obligations.len(),
            time_seconds: start.elapsed().as_secs_f64(),
            verified,
            failure,
        },
        fresh,
        hits,
        misses,
    }
}

/// Computes the cache keys for a pass's obligations under a selection: each
/// obligation is keyed by its canonical form, the rule library, the id of
/// the backend the selection routes its goal class to, and — for
/// circuit-equivalence goals — the pass's discharge register width.
pub fn obligation_fingerprints(
    obligations: &[ProofObligation],
    library: Fingerprint,
    selection: BackendSelection,
) -> Vec<Fingerprint> {
    let width = pass_register_width(obligations);
    obligations
        .iter()
        .map(|obligation| {
            let class = GoalClass::of(&obligation.goal);
            let backend = selection.backend_id_for(class);
            let register = if class == GoalClass::CircuitEquivalence { width } else { 0 };
            obligation_fingerprint(obligation, library, backend, register)
        })
        .collect()
}

/// Verifies one pass through the incremental cache under the default
/// routing: obligations are generated, fingerprinted, and only discharged
/// when their fingerprint misses (see [`crate::cache`]).
pub fn verify_pass_cached(pass: &VerifiedPass, cache: &mut VerdictCache) -> PassReport {
    verify_pass_cached_with(pass, cache, BackendSelection::Default)
}

/// Verifies one pass through the incremental cache under an explicit
/// backend selection.
pub fn verify_pass_cached_with(
    pass: &VerifiedPass,
    cache: &mut VerdictCache,
    selection: BackendSelection,
) -> PassReport {
    let obligations = (pass.obligations)();
    let fingerprints =
        obligation_fingerprints(&obligations, cache.rule_library_fingerprint(), selection);
    let walk = walk_pass_cached(pass, &obligations, &fingerprints, cache, selection);
    cache.note_pass(pass.name, walk.hits, walk.misses);
    for (fingerprint, verdict) in walk.fresh {
        cache.record(fingerprint, verdict);
    }
    walk.report
}

/// Verifies every pass in the registry under the default routing (the full
/// Table 2).
pub fn verify_all_passes() -> Vec<PassReport> {
    verify_all_passes_with(BackendSelection::Default)
}

/// Verifies every pass in the registry under an explicit backend selection.
pub fn verify_all_passes_with(selection: BackendSelection) -> Vec<PassReport> {
    crate::registry::verified_passes().iter().map(|p| verify_pass_with(p, selection)).collect()
}

/// Verifies every pass in the registry in parallel, one worker task per
/// chunk of the 44 registry entries.
///
/// Each pass's obligations are generated and discharged against a private
/// solver context with no state shared across passes — exactly the per-pass
/// modularity that §4 of the paper relies on — so the registry verifies
/// embarrassingly parallel.  Reports come back in registry order with the
/// same names and verdicts as [`verify_all_passes`]; only the recorded
/// per-pass wall-clock times may differ between the two.
pub fn verify_all_passes_parallel() -> Vec<PassReport> {
    crate::registry::verified_passes().par_iter().map(verify_pass).collect()
}

/// Verifies every pass in the registry through the incremental cache:
/// obligations are generated and fingerprinted for all 44 passes, cache hits
/// are answered per obligation from the stored verdicts, and only the
/// missed obligations are re-discharged (passes walk in parallel, like
/// [`verify_all_passes_parallel`]).  Reports come back in registry order and
/// are identical to [`verify_all_passes`] in everything but timing —
/// cross-check with [`reports_agree`].
pub fn verify_all_passes_cached(cache: &mut VerdictCache) -> Vec<PassReport> {
    verify_passes_cached(&crate::registry::verified_passes(), cache)
}

/// The cached verification path over an explicit pass list under the
/// default routing (used by the CLI for `--pass` filtering).  See
/// [`verify_all_passes_cached`].
pub fn verify_passes_cached(passes: &[VerifiedPass], cache: &mut VerdictCache) -> Vec<PassReport> {
    verify_passes_cached_with(passes, cache, BackendSelection::Default)
}

/// Discharges a planned batch of cache misses work-stealing-parallel.
///
/// The plan's groups (same selection, goal class, and register width) each
/// get one prewarmed template [`Discharger`] built up front on the calling
/// thread; workers pull items off a shared atomic index and snapshot-clone
/// the owning group's template whenever they cross a group boundary, so a
/// worker that drains a whole group reuses one solver context for all of it.
/// The worker count is bounded by the rayon pool size, i.e. by `--jobs`.
///
/// The returned map is keyed by fingerprint; because verdicts are pure
/// functions of the fingerprinted inputs (the determinism contract in
/// [`crate::backend`]), the map's contents are independent of scheduling.
fn discharge_batched(items: Vec<BatchItem<&Goal>>) -> HashMap<Fingerprint, CachedVerdict> {
    let groups = plan(items);
    let templates: Vec<Discharger> = groups
        .iter()
        .map(|group| {
            let mut discharger = Discharger::with_selection(group.selection);
            discharger.prewarm(group.width);
            discharger
        })
        .collect();
    // Flatten in plan order: (group index, fingerprint, goal).
    let units: Vec<(usize, Fingerprint, &Goal)> = groups
        .iter()
        .enumerate()
        .flat_map(|(index, group)| {
            group.work.iter().map(move |&(fingerprint, goal)| (index, fingerprint, goal))
        })
        .collect();
    let workers = rayon::current_num_threads().min(units.len()).max(1);
    if workers == 1 {
        // Single-worker pool (`--jobs 1` or a single unit): discharge in
        // plan order on this thread, straight on the templates.
        let mut templates = templates;
        return units
            .into_iter()
            .map(|(index, fingerprint, goal)| {
                (fingerprint, CachedVerdict::from_verdict(&templates[index].discharge(goal)))
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<(Fingerprint, CachedVerdict)> = Vec::new();
                    let mut current: Option<(usize, Discharger)> = None;
                    loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(index, fingerprint, goal)) = units.get(slot) else {
                            break;
                        };
                        let discharger = match current {
                            Some((held, ref mut discharger)) if held == index => discharger,
                            _ => {
                                let clone = templates[index].snapshot().unwrap_or_else(|| {
                                    // A backend without snapshot support:
                                    // build (and prewarm) a fresh context.
                                    let group = &groups[index];
                                    let mut d = Discharger::with_selection(group.selection);
                                    d.prewarm(group.width);
                                    d
                                });
                                &mut current.insert((index, clone)).1
                            }
                        };
                        let verdict = discharger.discharge(goal);
                        out.push((fingerprint, CachedVerdict::from_verdict(&verdict)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("discharge worker panicked"))
            .collect()
    })
}

/// The cached verification path over an explicit pass list and backend
/// selection.
///
/// Four phases keep the run deterministic and the hot path parallel:
///
/// 1. obligation generation + fingerprinting per pass, in parallel (pure);
/// 2. a sequential scan over the start-of-run cache collects every miss of
///    every pass into [`BatchItem`]s, and [`plan`] deduplicates them by
///    fingerprint and groups them by `(selection, goal class, width)`;
/// 3. the groups discharge work-stealing-parallel (`discharge_batched`):
///    one prewarmed template solver context per group, snapshot-cloned per
///    worker, so the whole run builds solver state per *group* instead of
///    per pass;
/// 4. per-pass reports, hit/miss stats, and fresh verdicts fold
///    sequentially, in registry order, answering misses from the discharged
///    batch — so the counters, the reports, and the persisted file are
///    byte-identical to the per-pass walk regardless of thread scheduling.
///
/// The rayon pool (bounded by `--jobs`) limits both phase-1 obligation
/// generation and phase-3 group discharge; `--jobs 1` degenerates to a
/// fully sequential run with identical output.
///
/// Hits and misses are judged against the start-of-run snapshot (the
/// phase-2 scan), so an obligation shared by two passes counts once per
/// pass within a single run — its verdict discharges once thanks to the
/// plan's fingerprint dedup — then hits for both on the next.  The fold
/// stops at each pass's first failing verdict exactly like the single-pass
/// walk (`walk_pass_cached`): later obligations of a failed pass may have
/// been discharged by the batch, but they are neither counted nor recorded.
pub fn verify_passes_cached_with(
    passes: &[VerifiedPass],
    cache: &mut VerdictCache,
    selection: BackendSelection,
) -> Vec<PassReport> {
    let library = cache.rule_library_fingerprint();
    let prepared: Vec<PreparedPass> = passes
        .par_iter()
        .map(|pass| {
            let obligations = (pass.obligations)();
            let fingerprints = obligation_fingerprints(&obligations, library, selection);
            (obligations, fingerprints)
        })
        .collect();
    // Phase 2: cross-pass miss scan against the start-of-run cache.  The
    // per-(pass, obligation) miss flags are remembered so phase 4 counts
    // hits and misses against this snapshot, not the mutating cache.
    let mut items: Vec<BatchItem<&Goal>> = Vec::new();
    let missed: Vec<Vec<bool>> = prepared
        .iter()
        .map(|(obligations, fingerprints)| {
            let width = pass_register_width(obligations);
            obligations
                .iter()
                .zip(fingerprints)
                .map(|(obligation, &fingerprint)| {
                    if cache.peek(fingerprint).is_some() {
                        return false;
                    }
                    let class = GoalClass::of(&obligation.goal);
                    items.push(BatchItem {
                        selection,
                        class,
                        width: if class == GoalClass::CircuitEquivalence { width } else { 0 },
                        fingerprint,
                        payload: &obligation.goal,
                    });
                    true
                })
                .collect()
        })
        .collect();
    // Phase 3: plan + work-stealing discharge of the deduplicated misses.
    let discharged = discharge_batched(items);
    // Phase 4: sequential registry-order fold with walk semantics.
    let mut reports = Vec::with_capacity(passes.len());
    for ((pass, (obligations, fingerprints)), missed) in passes.iter().zip(&prepared).zip(&missed) {
        let start = Instant::now();
        let mut verified = true;
        let mut failure = None;
        let mut fresh: Vec<(Fingerprint, CachedVerdict)> = Vec::new();
        let mut hits = 0;
        let mut misses = 0;
        for ((obligation, &fingerprint), &miss) in obligations.iter().zip(fingerprints).zip(missed)
        {
            let verdict = if miss {
                misses += 1;
                let cached =
                    discharged.get(&fingerprint).expect("the plan covers every scanned miss");
                let verdict = cached.to_verdict();
                fresh.push((fingerprint, CachedVerdict::from_verdict(&verdict)));
                verdict
            } else {
                hits += 1;
                cache.peek(fingerprint).expect("a phase-2 hit stays cached").to_verdict()
            };
            if !fold_verdict(verdict, &obligation.description, &mut verified, &mut failure) {
                break;
            }
        }
        cache.note_pass(pass.name, hits, misses);
        for (fingerprint, verdict) in fresh {
            cache.record(fingerprint, verdict);
        }
        reports.push(PassReport {
            name: pass.name.to_string(),
            pass_loc: pass.pass_loc,
            subgoals: obligations.len(),
            time_seconds: start.elapsed().as_secs_f64(),
            verified,
            failure,
        });
    }
    reports
}

/// True when two report lists agree on everything except timing: same order,
/// same pass names, subgoal counts, verdicts, and failure descriptions.
pub fn reports_agree(lhs: &[PassReport], rhs: &[PassReport]) -> bool {
    lhs.len() == rhs.len()
        && lhs.iter().zip(rhs).all(|(a, b)| {
            a.name == b.name
                && a.pass_loc == b.pass_loc
                && a.subgoals == b.subgoals
                && a.verified == b.verified
                && a.failure == b.failure
        })
}

/// Renders reports as a text table shaped like Table 2 of the paper.
pub fn render_table2(reports: &[PassReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<32} {:>8} {:>10} {:>12}  {}\n",
        "Pass name", "Pass LOC", "#subgoals", "Verif. t(s)", "verified"
    ));
    let mut total_loc = 0usize;
    let mut total_subgoals = 0usize;
    let mut total_time = 0.0f64;
    for report in reports {
        out.push_str(&format!(
            "{:<32} {:>8} {:>10} {:>12.3}  {}\n",
            report.name,
            report.pass_loc,
            report.subgoals,
            report.time_seconds,
            if report.verified { "yes" } else { "NO" }
        ));
        total_loc += report.pass_loc;
        total_subgoals += report.subgoals;
        total_time += report.time_seconds;
    }
    out.push_str(&format!(
        "{:<32} {:>8} {:>10} {:>12.3}\n",
        "Sum", total_loc, total_subgoals, total_time
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obligation::Goal;
    use qc_ir::Circuit;
    use qc_symbolic::SymCircuit;

    /// Total obligation count across the 44-pass registry (the
    /// `total_subgoals` of the committed Table 2 artifact) — what a fully
    /// warm obligation-grained cache answers.
    const REGISTRY_SUBGOALS: usize = 104;

    #[test]
    fn discharge_handles_each_goal_kind() {
        // Equivalence.
        let mut lhs = Circuit::new(2);
        lhs.cx(0, 1).cx(0, 1);
        let rhs = Circuit::new(2);
        let goal = Goal::Equivalence {
            lhs: SymCircuit::from_circuit(&lhs),
            rhs: SymCircuit::from_circuit(&rhs),
        };
        assert!(discharge(&goal).is_proved());
        // Termination.
        assert!(discharge(&Goal::TerminationDecrease { consumed: 1, kept: 0 }).is_proved());
        assert!(discharge(&Goal::TerminationDecrease { consumed: 1, kept: 1 }).is_refuted());
        assert!(discharge(&Goal::AlwaysTerminates).is_proved());
        assert!(discharge(&Goal::CircuitUnchanged).is_proved());
        // Permutation equivalence.
        let mut original = Circuit::new(3);
        original.cx(0, 2);
        let mut routed = Circuit::new(3);
        routed.swap(1, 2).cx(0, 1);
        let goal = Goal::EquivalenceUpToPermutation {
            lhs: SymCircuit::from_circuit(&original),
            rhs: SymCircuit::from_circuit(&routed),
            perm: vec![0, 2, 1],
        };
        assert!(discharge(&goal).is_proved());
        // Every goal kind also discharges identically under the reference
        // backend.
        assert!(discharge_with(&goal, BackendSelection::Reference).is_proved());
        assert!(discharge_with(
            &Goal::TerminationDecrease { consumed: 1, kept: 1 },
            BackendSelection::Reference
        )
        .is_refuted());
    }

    #[test]
    fn parallel_verification_matches_sequential() {
        let sequential = verify_all_passes();
        let parallel = verify_all_passes_parallel();
        assert_eq!(sequential.len(), 44);
        assert!(reports_agree(&sequential, &parallel));
    }

    #[test]
    fn cached_verification_matches_uncached_and_hits_on_the_warm_run() {
        let uncached = verify_all_passes();
        let mut cache = VerdictCache::new();
        let cold = verify_all_passes_cached(&mut cache);
        assert!(reports_agree(&uncached, &cold));
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), REGISTRY_SUBGOALS);
        cache.reset_stats();
        let warm = verify_all_passes_cached(&mut cache);
        assert!(reports_agree(&uncached, &warm));
        assert_eq!(cache.hits(), REGISTRY_SUBGOALS);
        assert_eq!(cache.misses(), 0);
        // Per-pass stats cover every pass and sum to the totals.
        assert_eq!(cache.pass_stats().len(), 44);
        let per_pass_hits: usize = cache.pass_stats().iter().map(|s| s.hits).sum();
        assert_eq!(per_pass_hits, REGISTRY_SUBGOALS);
        assert!(cache.pass_stats().iter().all(|s| s.misses == 0 && s.hits > 0));
    }

    #[test]
    fn invalidating_one_obligation_rechecks_only_that_obligation() {
        let mut cache = VerdictCache::new();
        let cold = verify_all_passes_cached(&mut cache);
        // Forget one obligation of one pass — CXCancellation's obligations
        // are unique to it (many registry obligations are shared across
        // passes and would miss once per occurrence), so exactly one
        // occurrence misses.
        let passes = crate::registry::verified_passes();
        let pass = passes.iter().find(|p| p.name == "CXCancellation").unwrap();
        let obligations = (pass.obligations)();
        let fingerprints = obligation_fingerprints(
            &obligations,
            cache.rule_library_fingerprint(),
            BackendSelection::Default,
        );
        assert!(cache.invalidate(fingerprints[0]));
        cache.reset_stats();
        let warm = verify_all_passes_cached(&mut cache);
        assert!(reports_agree(&cold, &warm));
        assert_eq!(cache.misses(), 1, "only the invalidated obligation re-discharges");
        assert_eq!(cache.hits(), REGISTRY_SUBGOALS - 1);
        let stats = cache.pass_stats().iter().find(|s| s.pass == "CXCancellation").unwrap().clone();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, obligations.len() - 1);
        // The re-discharge refreshed the entry: everything hits again.
        cache.reset_stats();
        let _ = verify_all_passes_cached(&mut cache);
        assert_eq!(cache.hits(), REGISTRY_SUBGOALS);
    }

    #[test]
    fn reference_selection_keeps_separate_cache_entries() {
        let mut cache = VerdictCache::new();
        let passes = crate::registry::verified_passes();
        let default_cold =
            verify_passes_cached_with(&passes, &mut cache, BackendSelection::Default);
        let default_entries = cache.len();
        cache.reset_stats();
        // A reference run against the same cache file misses everything —
        // its verdicts are keyed by the reference backend id.
        let reference_cold =
            verify_passes_cached_with(&passes, &mut cache, BackendSelection::Reference);
        assert!(reports_agree(&default_cold, &reference_cold));
        assert_eq!(cache.misses(), REGISTRY_SUBGOALS);
        assert!(cache.len() > default_entries);
        // Both selections are now warm in one file.
        cache.reset_stats();
        let _ = verify_passes_cached_with(&passes, &mut cache, BackendSelection::Reference);
        assert_eq!(cache.hits(), REGISTRY_SUBGOALS);
        cache.reset_stats();
        let _ = verify_passes_cached_with(&passes, &mut cache, BackendSelection::Default);
        assert_eq!(cache.hits(), REGISTRY_SUBGOALS);
    }

    #[test]
    fn single_pass_cached_verification_matches_the_batch_path() {
        let passes = crate::registry::verified_passes();
        let pass = passes.iter().find(|p| p.name == "CXCancellation").unwrap();
        let mut cache = VerdictCache::new();
        let cold = verify_pass_cached(pass, &mut cache);
        assert!(cold.verified);
        assert!(cache.misses() > 0);
        cache.reset_stats();
        let warm = verify_pass_cached(pass, &mut cache);
        assert!(reports_agree(std::slice::from_ref(&cold), std::slice::from_ref(&warm)));
        assert_eq!(cache.misses(), 0);
        assert_eq!(cache.hits(), cold.subgoals);
    }

    #[test]
    fn pass_report_json_round_trips() {
        let report = PassReport {
            name: "GateDirection".to_string(),
            pass_loc: 55,
            subgoals: 5,
            time_seconds: 0.125,
            verified: false,
            failure: Some("cx flipped: counterexample on wire 1".to_string()),
        };
        let timed = report.to_json_value(true).to_pretty();
        let back = PassReport::from_json_value(&crate::json::parse(&timed).unwrap()).unwrap();
        assert_eq!(back.name, report.name);
        assert_eq!(back.pass_loc, report.pass_loc);
        assert_eq!(back.subgoals, report.subgoals);
        assert_eq!(back.verified, report.verified);
        assert_eq!(back.failure, report.failure);
        assert_eq!(back.time_seconds.to_bits(), report.time_seconds.to_bits());
        // Deterministic form omits timing and decodes it as zero.
        let bare = report.to_json_value(false).to_pretty();
        assert!(!bare.contains("time_seconds"));
        let back = PassReport::from_json_value(&crate::json::parse(&bare).unwrap()).unwrap();
        assert_eq!(back.time_seconds, 0.0);
        assert!(reports_agree(std::slice::from_ref(&report), &[back]));
    }

    #[test]
    fn reports_agree_detects_differences() {
        let report = PassReport {
            name: "CXCancellation".to_string(),
            pass_loc: 24,
            subgoals: 4,
            time_seconds: 0.01,
            verified: true,
            failure: None,
        };
        let mut flipped = report.clone();
        flipped.verified = false;
        // Timing differences are ignored; verdict differences are not.
        let mut retimed = report.clone();
        retimed.time_seconds = 99.0;
        assert!(reports_agree(std::slice::from_ref(&report), &[retimed]));
        assert!(!reports_agree(std::slice::from_ref(&report), &[flipped]));
        assert!(!reports_agree(&[report], &[]));
    }

    #[test]
    fn table_rendering_includes_totals() {
        let reports = vec![PassReport {
            name: "CXCancellation".to_string(),
            pass_loc: 24,
            subgoals: 4,
            time_seconds: 0.01,
            verified: true,
            failure: None,
        }];
        let table = render_table2(&reports);
        assert!(table.contains("CXCancellation"));
        assert!(table.contains("Sum"));
    }
}
