//! The verified utility library (§4, "Utility function calls").
//!
//! The paper verifies a small library of shared utility functions once and
//! for all in Coq and replaces their invocations by their specifications
//! during symbolic execution.  Here each utility is paired with an explicit,
//! executable specification checker; the checkers are exercised exhaustively
//! and by property-based tests (see `tests/` at the workspace root), which is
//! the offline substitute for the Coq proofs.

use qc_ir::unitary::{circuit_unitary, circuits_equivalent};
use qc_ir::{Circuit, CouplingMap, Gate, GateKind, QcError};
use qc_passes::basis::decompose_gate;
use qc_passes::optimization::merge_1q_run;

/// `next_gate(circ, index)`: index of the first later gate sharing a qubit
/// with the gate at `index` (the specification of §3/§4 of the paper).
pub fn next_gate(circuit: &Circuit, index: usize) -> Option<usize> {
    circuit.next_shared_gate(index)
}

/// Checks the four clauses of the `next_gate` specification for a concrete
/// circuit and index; returns `false` if any clause is violated.
pub fn next_gate_spec_holds(circuit: &Circuit, index: usize) -> bool {
    let Some(gate) = circuit.get(index) else { return true };
    match next_gate(circuit, index) {
        None => {
            // No later gate shares a qubit.
            (index + 1..circuit.size()).all(|j| !circuit.gates()[j].shares_qubit(gate))
        }
        Some(x) => {
            // 1) x is a valid index; 2) x is after index; 3) nothing in between
            // shares a qubit; 4) gate x shares a qubit.
            x < circuit.size()
                && x > index
                && (index + 1..x).all(|j| !circuit.gates()[j].shares_qubit(gate))
                && circuit.gates()[x].shares_qubit(gate)
        }
    }
}

/// `shortest_path(coupling, a, b)`: the verified routing utility.
pub fn shortest_path(coupling: &CouplingMap, a: usize, b: usize) -> Option<Vec<usize>> {
    coupling.shortest_path(a, b)
}

/// Checks the `shortest_path` specification: the path starts at `a`, ends at
/// `b`, every hop is a coupling edge, and no shorter path exists (verified
/// against the BFS distance).
pub fn shortest_path_spec_holds(coupling: &CouplingMap, a: usize, b: usize) -> bool {
    match shortest_path(coupling, a, b) {
        None => coupling.distance(a, b).is_none(),
        Some(path) => {
            path.first() == Some(&a)
                && path.last() == Some(&b)
                && path.windows(2).all(|w| coupling.connected(w[0], w[1]))
                && coupling.distance(a, b) == Some(path.len() - 1)
        }
    }
}

/// `merge_1q_gate(run)`: the verified 1-qubit merge utility (§7.1); returns
/// the merged gate kind.
///
/// # Errors
///
/// Returns an error when a gate in the run has no matrix.
pub fn merge_1q_gate(run: &[Gate]) -> Result<GateKind, QcError> {
    merge_1q_run(run)
}

/// Checks the `merge_1q_gate` specification: the merged gate is equivalent to
/// the whole run (and the run must not contain conditioned gates — that
/// precondition is exactly what the buggy Qiskit pass violated).
pub fn merge_1q_spec_holds(run: &[Gate]) -> bool {
    if run.iter().any(Gate::is_conditioned) {
        return false;
    }
    let Ok(merged) = merge_1q_gate(run) else { return false };
    let qubit = run.first().map(|g| g.qubits[0]).unwrap_or(0);
    let mut original = Circuit::new(1);
    for gate in run {
        let mut g = gate.clone();
        g.qubits = vec![0];
        if original.push(g).is_err() {
            return false;
        }
    }
    let mut single = Circuit::new(1);
    single.add(merged, &[0]);
    let _ = qubit;
    circuits_equivalent(&original, &single).unwrap_or(false)
}

/// `decompose(gate)`: the verified decomposition library shared with the
/// basis-change passes.
pub fn decompose(gate: &Gate) -> Option<Vec<Gate>> {
    decompose_gate(gate)
}

/// Checks the decomposition specification: the emitted gates are equivalent
/// to the original gate.
pub fn decompose_spec_holds(gate: &Gate) -> bool {
    match decompose(gate) {
        None => true,
        Some(parts) => {
            let n = gate.num_qubits();
            let mut original = Circuit::new(n);
            if original.push(gate.clone()).is_err() {
                return false;
            }
            let mut replaced = Circuit::new(n);
            for part in parts {
                if replaced.push(part).is_err() {
                    return false;
                }
            }
            circuits_equivalent(&original, &replaced).unwrap_or(false)
        }
    }
}

/// The verified-library fact behind `RemoveDiagonalGatesBeforeMeasure`: a
/// diagonal gate applied right before a computational-basis measurement does
/// not change the measurement statistics.  Checked numerically on every
/// computational basis state.
pub fn diagonal_gate_preserves_measurement(kind: GateKind) -> bool {
    if !kind.is_diagonal() {
        return false;
    }
    let n = kind.arity().max(1);
    let mut circuit = Circuit::new(n);
    circuit.add(kind, &(0..n).collect::<Vec<_>>());
    let Ok(u) = circuit_unitary(&circuit) else { return false };
    // A diagonal unitary maps each basis state to a phase times itself, so
    // every column must have unit magnitude on the diagonal.
    (0..u.rows()).all(|i| (u[(i, i)].abs() - 1.0).abs() < 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_gate_spec_on_the_figure_5_shape() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).h(2).cx(0, 1).cx(1, 2);
        for i in 0..c.size() {
            assert!(next_gate_spec_holds(&c, i), "spec fails at index {i}");
        }
        assert_eq!(next_gate(&c, 0), Some(2));
    }

    #[test]
    fn shortest_path_spec_on_standard_devices() {
        for coupling in [CouplingMap::line(6), CouplingMap::ring(7), CouplingMap::ibm16()] {
            for a in 0..coupling.num_qubits() {
                for b in 0..coupling.num_qubits() {
                    assert!(shortest_path_spec_holds(&coupling, a, b));
                }
            }
        }
    }

    #[test]
    fn merge_spec_holds_for_unconditioned_runs_only() {
        let run = vec![
            Gate::new(GateKind::U1(0.2), vec![0]),
            Gate::new(GateKind::U2(0.3, 0.4), vec![0]),
            Gate::new(GateKind::U3(0.5, 0.6, 0.7), vec![0]),
        ];
        assert!(merge_1q_spec_holds(&run));
        let mut conditioned = run.clone();
        conditioned[1] = conditioned[1].clone().with_classical_condition(0, true);
        assert!(!merge_1q_spec_holds(&conditioned));
    }

    #[test]
    fn decompose_spec_holds_for_the_whole_library() {
        let samples = vec![
            Gate::new(GateKind::H, vec![0]),
            Gate::new(GateKind::S, vec![0]),
            Gate::new(GateKind::CZ, vec![0, 1]),
            Gate::new(GateKind::Swap, vec![0, 1]),
            Gate::new(GateKind::CCX, vec![0, 1, 2]),
        ];
        for gate in samples {
            assert!(decompose_spec_holds(&gate), "decomposition spec fails for {}", gate.name());
        }
    }

    #[test]
    fn diagonal_measurement_fact() {
        assert!(diagonal_gate_preserves_measurement(GateKind::Z));
        assert!(diagonal_gate_preserves_measurement(GateKind::T));
        assert!(diagonal_gate_preserves_measurement(GateKind::RZ(0.3)));
        assert!(diagonal_gate_preserves_measurement(GateKind::CZ));
        assert!(!diagonal_gate_preserves_measurement(GateKind::H));
        assert!(!diagonal_gate_preserves_measurement(GateKind::X));
    }
}
