//! # giallar-core — push-button verification for quantum compiler passes
//!
//! This crate is the reproduction of the Giallar toolkit itself (PLDI 2022):
//! it verifies, without manual invariants or proofs, that compiler passes
//! preserve the semantics of quantum circuits.
//!
//! The architecture follows the paper:
//!
//! * [`templates`] — the three loop templates (`iterate_all_gates`,
//!   `while_gate_remaining`, `collect_runs`).  A pass describes each branch of
//!   its loop body as "what it consumes from the remaining gates, what it
//!   emits to the output, what it keeps"; the template turns every branch into
//!   a proof obligation that re-establishes the automatically inferred loop
//!   invariant, plus a termination subgoal for while-loops.
//! * [`library`] — the verified utility library (`next_gate`,
//!   `shortest_path`, `merge_1q_gate`, the decomposition library).  Utility
//!   invocations are replaced by their specifications during symbolic
//!   execution; the specifications themselves are validated once and for all
//!   against the matrix semantics in this crate's tests.
//! * [`verifier`] — generates the proof obligations for a pass according to
//!   its virtual class ([`obligation::PassClass`]), discharges them with the
//!   symbolic circuit rewriting of `qc-symbolic` backed by the `smtlite`
//!   solver, and reports either success or a concrete counterexample.
//! * [`registry`] — the 44 verified Qiskit passes (Table 2 of the paper),
//!   each pairing an executable implementation with its Giallar model.
//! * [`wrapper`] — the Qiskit wrapper: converts the DAG representation to the
//!   verified library's gate-list representation around each verified pass,
//!   and assembles the verified transpilation pipeline used in the Figure 11
//!   comparison.
//! * [`case_studies`] — the three bugs of §7 (conditioned 1-qubit merges,
//!   non-transitive commutation groups, non-terminating lookahead routing),
//!   detected automatically by the verifier.
//! * [`backend`] — the solver-backend seam: a [`backend::SolverBackend`]
//!   trait with capability descriptors, concrete backends (compiled
//!   rewriting, arithmetic, trivial, and a naive reference backend for
//!   differential runs), and a [`backend::BackendRegistry`] that routes each
//!   goal class to the backend selected by [`backend::BackendSelection`].
//! * [`batch`] — the discharge planning step shared by the daemon
//!   dispatcher and the verifier's cross-pass batched discharge: cache
//!   misses are deduplicated by fingerprint and grouped by
//!   `(backend selection, goal class, register width)` so each group can
//!   share one prewarmed, snapshot-cloned solver context.
//! * [`certificate`] — per-compilation translation-validation certificates:
//!   a compilation can emit a machine-checkable
//!   [`certificate::EquivalenceCertificate`] (circuit fingerprints, wire
//!   map, per-wire equivalence evidence) that an independent
//!   [`certificate::check_certificate`] run re-validates, refusing any
//!   tampering.
//! * [`gen`] — the generative fuzz campaign: a seeded random-circuit
//!   generator over gate-alphabet presets, randomly drawn
//!   [`qc_passes::inject::SabotagePass`] fault matrices, a certify/check
//!   oracle across every solver backend, and a delta-debug shrinker that
//!   reduces any surviving counterexample to a minimal wounding edit.
//! * [`cache`] — the incremental verification cache: per-**obligation**
//!   verdicts keyed by a stable fingerprint of the obligation's canonical
//!   form, the rewrite-rule library, and the discharging backend id,
//!   persisted as JSON, so re-verification discharges only the obligations
//!   that changed ([`verifier::verify_all_passes_cached`]).
//! * [`shard`] — the resident-service cache: [`shard::ShardedVerdictCache`]
//!   spreads the obligation-grained entries across lock-sharded partitions
//!   for concurrent serving, with LRU/TTL eviction, pinning for in-flight
//!   requests, compaction of entries from retired backends or stale rule
//!   libraries, and deterministic statistics folding.
//! * [`json`] / [`serialize`] — a dependency-free JSON document model and
//!   the obligation/report encodings built on it (the vendored `serde` is a
//!   no-op shim).
//!
//! # Example
//!
//! ```
//! use giallar_core::registry::verified_passes;
//! use giallar_core::verifier::verify_pass;
//!
//! let passes = verified_passes();
//! let cx_cancellation = passes.iter().find(|p| p.name == "CXCancellation").unwrap();
//! let report = verify_pass(cx_cancellation);
//! assert!(report.verified);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod batch;
pub mod cache;
pub mod case_studies;
pub mod certificate;
pub mod gen;
pub mod json;
pub mod library;
pub mod mutate;
pub mod obligation;
pub mod registry;
pub mod serialize;
pub mod shard;
pub mod templates;
pub mod verifier;
pub mod wrapper;

pub use backend::{BackendDescriptor, BackendRegistry, BackendSelection, GoalClass, SolverBackend};
pub use batch::{plan, BatchItem, DischargeGroup};
pub use cache::{
    obligation_fingerprint, CachedVerdict, PassCacheStats, VerdictCache, CACHE_FORMAT_VERSION,
};
pub use certificate::{
    certify_compilation, check_certificate, circuit_fingerprint, end_to_end_wire_map,
    EquivalenceCertificate, CERT_SCHEMA,
};
pub use gen::{
    draw_faults, fault_family, generate_circuit, generate_corpus, run_generative_campaign,
    shrink_case, GateAlphabet, GenCase, GenConfig, GenerativeOutcome, GenerativeReport, ShrinkCase,
    ShrunkSurvivor,
};
pub use mutate::{
    enumerate_mutants, parse_seed, run_campaign, run_pipeline_campaign, BackendRun, CampaignConfig,
    CampaignReport, Expectation, Mutant, MutantEnumeration, MutantOutcome, OperatorFamily,
    PipelineInput, PipelineOutcome, XorShift,
};
pub use obligation::{Goal, PassClass, ProofObligation};
pub use registry::{verified_passes, VerifiedPass};
pub use shard::{EvictionPolicy, FoldedStats, ShardStats, ShardedVerdictCache};
pub use verifier::{
    fold_verdict_stream, obligation_fingerprints, pass_register_width, verify_all_passes,
    verify_all_passes_cached, verify_all_passes_with, verify_pass, verify_pass_cached,
    verify_pass_with, Discharger, PassReport, VerdictFold,
};
pub use wrapper::{giallar_transpile, QiskitWrapper};
