//! Fault-injection campaign: a mutation harness that proves the verifier
//! actually catches bugs.
//!
//! The registry of [`crate::registry::verified_passes`] demonstrates that
//! the verifier *accepts* correct passes; this module demonstrates the
//! other direction.  It systematically wounds pass semantics — swapped and
//! off-by-one wire maps, dropped/duplicated/reordered gates, wrong basis
//! decompositions, identity-instead-of-transform — and asserts that every
//! wound is refuted by **every** solver-backend routing, with a refutation that
//! carries structured fault coordinates ([`smtlite::FaultSite`]).
//!
//! Three layers:
//!
//! 1. **Mutation operators** ([`OperatorFamily`]) over the registry's
//!    proof obligations.  [`enumerate_mutants`] walks every
//!    `(pass × operator × site)` triple deterministically from a seed and
//!    keeps only *genuine* wounds: each candidate equivalence mutation is
//!    screened against the numeric unitary oracle
//!    ([`qc_ir::unitary::circuits_equivalent`]) under seeded segment
//!    instantiations, so semantically harmless mutations (dropping a
//!    barrier, reordering commuting gates, flipping a symmetric gate) are
//!    counted as *equivalent mutants* instead of polluting the detection
//!    rate.
//! 2. **Campaign driver** ([`run_campaign`]): each mutant's wounded
//!    obligation list is discharged through a fresh [`Discharger`] under
//!    both [`BackendSelection`]s with the exact `verify_pass` walk
//!    semantics ([`fold_verdict_stream`]), recording the verdict,
//!    time-to-refute, and whether the refutation's [`FaultSite`] lands
//!    inside the wound's forward light-cone of wires.
//! 3. **End-to-end pipeline campaign** ([`run_pipeline_campaign`]): a
//!    [`qc_passes::inject::SabotagePass`] corrupts real compilations after
//!    the standard pipeline, and `compile --certify` +
//!    [`crate::certificate::check_certificate`] must refuse the resulting
//!    certificate.
//!
//! The `giallar fuzz` CLI subcommand and the committed
//! `BENCH_bug_detection.json` artifact are thin wrappers over this module.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use qc_ir::unitary::{circuits_equivalent, equivalent_up_to_permutation};
use qc_ir::{Circuit, CouplingMap, Gate, GateKind};
use qc_passes::inject::{PipelineFault, SabotagePass};
use qc_symbolic::{SymCircuit, SymElement, Verdict};
use rayon::prelude::*;
use smtlite::FaultSite;

use crate::backend::BackendSelection;
use crate::certificate::{certify_compilation, check_certificate, end_to_end_wire_map};
use crate::obligation::{Goal, ProofObligation};
use crate::registry::verified_passes;
use crate::verifier::{fold_verdict_stream, pass_register_width, Discharger};
use crate::wrapper::{giallar_pass_manager, giallar_pipeline_pass_names, giallar_transpile};

/// Parses a campaign seed.  Accepts a decimal integer, a `0x`-prefixed hex
/// integer, or — for anything else (the canonical CI seed `0xg1allar` is
/// not valid hex) — the FNV-1a hash of the raw string, so every spelling
/// names a deterministic campaign.
pub fn parse_seed(text: &str) -> u64 {
    if let Ok(value) = text.parse::<u64>() {
        return value;
    }
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        if let Ok(value) = u64::from_str_radix(hex, 16) {
            return value;
        }
    }
    fnv1a(text.as_bytes())
}

/// FNV-1a over bytes (the seed hash; stable across platforms).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A tiny deterministic PRNG (xorshift64*) for segment instantiation and
/// the generative corpus; the campaigns never need statistical quality,
/// only platform-stable variety.
pub struct XorShift(u64);

impl XorShift {
    /// Creates a generator from `seed` (the all-zeros fixed point is
    /// avoided by forcing the low bit).
    pub fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A draw uniform in `0..n` (`0` when `n` is zero).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// The mutation operator families of the campaign (§"wounding pass
/// semantics").  At least five families must appear in any full campaign —
/// the committed artifact asserts seven.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OperatorFamily {
    /// Swap two entries of a routing wire map (the pass tracked its SWAPs
    /// in the wrong order).
    WireMapSwap,
    /// Increment one wire-map entry (off-by-one routing target; may push
    /// the entry out of range or make the map non-bijective).
    WireMapOffByOne,
    /// Drop one emitted gate (the pass forgot to emit part of its
    /// rewrite).
    GateDrop,
    /// Duplicate one emitted gate (the pass emitted a rewrite twice).
    GateDuplicate,
    /// Swap two adjacent gates (the pass emitted its rewrite out of
    /// order).
    GateReorder,
    /// Replace a gate by a plausible-but-wrong variant: flipped CX
    /// direction, negated rotation angle, swapped Euler angles, truncated
    /// SWAP decomposition, S/T for their adjoints.
    WrongDecomposition,
    /// The pass claims a transformation but performs none: a termination
    /// measure that never decreases, or a routing goal whose emitted side
    /// is empty while the wire map still claims a permutation.
    IdentityTransform,
}

impl OperatorFamily {
    /// Every operator family, in artifact order.
    pub const ALL: [OperatorFamily; 7] = [
        OperatorFamily::WireMapSwap,
        OperatorFamily::WireMapOffByOne,
        OperatorFamily::GateDrop,
        OperatorFamily::GateDuplicate,
        OperatorFamily::GateReorder,
        OperatorFamily::WrongDecomposition,
        OperatorFamily::IdentityTransform,
    ];

    /// The family's stable name (used in the JSON artifact and CLI table).
    pub fn name(self) -> &'static str {
        match self {
            OperatorFamily::WireMapSwap => "wire-map-swap",
            OperatorFamily::WireMapOffByOne => "wire-map-off-by-one",
            OperatorFamily::GateDrop => "gate-drop",
            OperatorFamily::GateDuplicate => "gate-duplicate",
            OperatorFamily::GateReorder => "gate-reorder",
            OperatorFamily::WrongDecomposition => "wrong-decomposition",
            OperatorFamily::IdentityTransform => "identity-transform",
        }
    }
}

/// Where the refutation of a mutant is expected to point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expectation {
    /// A [`FaultSite::Wire`] naming a wire inside this set (the forward
    /// light-cone of the mutated gate, or the remapped wire-map entries).
    Wires(Vec<usize>),
    /// A [`FaultSite::WireMap`] coordinate (malformed map), or a
    /// [`FaultSite::Wire`] within the remapped entries.
    WireMap(Vec<usize>),
    /// A [`FaultSite::Termination`] coordinate.
    Termination,
}

impl Expectation {
    /// Whether a reported fault site satisfies this expectation.
    pub fn matches(&self, site: &FaultSite) -> bool {
        match (self, site) {
            (Expectation::Wires(wires), FaultSite::Wire { wire }) => wires.contains(wire),
            (Expectation::WireMap(_), FaultSite::WireMap { .. }) => true,
            (Expectation::WireMap(wires), FaultSite::Wire { wire }) => wires.contains(wire),
            (Expectation::Termination, FaultSite::Termination { .. }) => true,
            _ => false,
        }
    }
}

/// One enumerated mutant: a registry pass with exactly one wounded proof
/// obligation.
#[derive(Clone)]
pub struct Mutant {
    /// Stable index in enumeration order (deterministic per seed).
    pub id: usize,
    /// The registry pass whose obligation was wounded.
    pub pass: &'static str,
    /// The operator family that produced the wound.
    pub family: OperatorFamily,
    /// Index of the wounded obligation in the pass's obligation list.
    pub obligation_index: usize,
    /// Description of the wounded obligation.
    pub obligation: String,
    /// Human-readable description of the wound site.
    pub site: String,
    /// Where the refutation is expected to point.
    pub expected: Expectation,
    /// The pass's full obligation list with the wound applied in place.
    pub obligations: Vec<ProofObligation>,
}

/// One candidate wound of a single goal, before the equivalent-mutant
/// filter.
struct Candidate {
    family: OperatorFamily,
    goal: Goal,
    site: String,
    expected: Expectation,
}

/// Outcome of screening a candidate against the numeric oracle.
enum Screen {
    /// Some instantiation witnesses non-equivalence: a genuine wound.
    Wound,
    /// Every instantiation stayed equivalent: an equivalent mutant.
    Equivalent,
    /// The oracle cannot decide (measurements, resets, oversized
    /// registers): conservatively skipped.
    Unknown,
}

/// The result of [`enumerate_mutants`]: the kept mutants plus the counts
/// of candidates the equivalent-mutant filter rejected.
pub struct MutantEnumeration {
    /// The kept (genuinely wounded) mutants, in deterministic order.
    pub mutants: Vec<Mutant>,
    /// Candidates rejected because every instantiation stayed equivalent.
    pub skipped_equivalent: usize,
    /// Candidates rejected because the numeric oracle could not decide.
    pub skipped_unknown: usize,
}

/// The wires a gate acts on (including a quantum condition's control
/// wire).
fn gate_wires(gate: &Gate) -> Vec<usize> {
    let mut wires = gate.qubits.clone();
    if let Some(condition) = &gate.condition {
        if let qc_ir::ConditionKind::Quantum { qubit } = condition.kind {
            wires.push(qubit);
        }
    }
    wires
}

/// The forward light-cone of a wound: starting from the mutated element's
/// wires, every wire a later element of the same circuit can entangle with
/// them.  The per-wire equivalence check can only report a differing wire
/// inside this set, so it bounds where a *precise* refutation must point.
fn forward_cone(
    elements: &[SymElement],
    from: usize,
    seed_wires: &[usize],
    width: usize,
) -> Vec<usize> {
    let mut cone: BTreeSet<usize> = seed_wires.iter().copied().collect();
    for element in elements.iter().skip(from) {
        match element {
            SymElement::Gate(gate) => {
                let wires = gate_wires(gate);
                if wires.iter().any(|w| cone.contains(w)) {
                    cone.extend(wires);
                }
            }
            SymElement::Segment { excluded_qubits, .. } => {
                let allowed: Vec<usize> =
                    (0..width).filter(|q| !excluded_qubits.contains(q)).collect();
                if allowed.iter().any(|w| cone.contains(w)) {
                    cone.extend(allowed);
                }
            }
        }
    }
    cone.into_iter().collect()
}

/// Rebuilds a symbolic circuit from an element list.
fn rebuild(width: usize, elements: Vec<SymElement>) -> SymCircuit {
    let mut circuit = SymCircuit::new(width);
    for element in elements {
        match element {
            SymElement::Gate(gate) => {
                circuit.push_gate(gate);
            }
            SymElement::Segment { name, excluded_qubits } => {
                circuit.push_segment(&name, excluded_qubits);
            }
        }
    }
    circuit
}

/// A plausible-but-wrong variant of a gate (the `wrong-decomposition`
/// operator), or `None` when no asymmetry is available to exploit.
fn wrong_variant(gate: &Gate) -> Option<(Gate, &'static str)> {
    let mut wounded = gate.clone();
    let label = match gate.kind {
        GateKind::CX | GateKind::CY | GateKind::CH | GateKind::Ecr => {
            wounded.qubits.reverse();
            "flipped operand order"
        }
        GateKind::CRZ(_) => {
            wounded.qubits.reverse();
            "flipped operand order"
        }
        GateKind::S => {
            wounded.kind = GateKind::Sdg;
            "adjoint instead of gate"
        }
        GateKind::Sdg => {
            wounded.kind = GateKind::S;
            "adjoint instead of gate"
        }
        GateKind::T => {
            wounded.kind = GateKind::Tdg;
            "adjoint instead of gate"
        }
        GateKind::Tdg => {
            wounded.kind = GateKind::T;
            "adjoint instead of gate"
        }
        GateKind::SX => {
            wounded.kind = GateKind::SXdg;
            "adjoint instead of gate"
        }
        GateKind::SXdg => {
            wounded.kind = GateKind::SX;
            "adjoint instead of gate"
        }
        GateKind::RX(theta) if theta != 0.0 => {
            wounded.kind = GateKind::RX(-theta);
            "negated angle"
        }
        GateKind::RY(theta) if theta != 0.0 => {
            wounded.kind = GateKind::RY(-theta);
            "negated angle"
        }
        GateKind::RZ(theta) if theta != 0.0 => {
            wounded.kind = GateKind::RZ(-theta);
            "negated angle"
        }
        GateKind::P(theta) if theta != 0.0 => {
            wounded.kind = GateKind::P(-theta);
            "negated angle"
        }
        GateKind::U1(theta) if theta != 0.0 => {
            wounded.kind = GateKind::U1(-theta);
            "negated angle"
        }
        GateKind::RZZ(theta) if theta != 0.0 => {
            wounded.kind = GateKind::RZZ(-theta);
            "negated angle"
        }
        GateKind::CP(theta) if theta != 0.0 => {
            wounded.kind = GateKind::CP(-theta);
            "negated angle"
        }
        GateKind::U2(phi, lam) if phi != lam => {
            wounded.kind = GateKind::U2(lam, phi);
            "swapped Euler angles"
        }
        GateKind::U3(theta, phi, lam) if phi != lam => {
            wounded.kind = GateKind::U3(theta, lam, phi);
            "swapped Euler angles"
        }
        GateKind::Swap => {
            wounded.kind = GateKind::CX;
            "truncated SWAP decomposition"
        }
        GateKind::CCX => {
            wounded.kind = GateKind::CX;
            wounded.qubits = vec![gate.qubits[1], gate.qubits[2]];
            "dropped Toffoli control"
        }
        _ => return None,
    };
    Some((wounded, label))
}

/// Translates a set of wound wires into the logical coordinates the
/// per-wire equivalence check reports in.  Plain equivalence goals and
/// lhs (original-side) wounds are already logical; a wound on the routed
/// side of a permutation goal lives in physical wires, and the check
/// reports the logical wire `l` whose image `perm[l]` differs.
fn expected_logical_wires(
    cone: Vec<usize>,
    mutated_is_lhs: bool,
    perm: Option<&[usize]>,
    width: usize,
) -> Vec<usize> {
    match perm {
        Some(perm) if !mutated_is_lhs => {
            (0..width).filter(|&l| cone.contains(perm.get(l).unwrap_or(&l))).collect()
        }
        _ => cone,
    }
}

/// Enumerates the gate-level candidates for one side of an equivalence
/// goal, rebuilding the goal with the mutated side in place.
fn side_candidates(
    side_name: &str,
    circuit: &SymCircuit,
    other: &SymCircuit,
    mutated_is_lhs: bool,
    perm: Option<&[usize]>,
    out: &mut Vec<Candidate>,
) {
    let width = circuit.num_qubits().max(other.num_qubits());
    let elements = circuit.elements();
    let remake_goal = |mutated: SymCircuit| -> Goal {
        let (lhs, rhs) =
            if mutated_is_lhs { (mutated, other.clone()) } else { (other.clone(), mutated) };
        match perm {
            None => Goal::Equivalence { lhs, rhs },
            Some(p) => Goal::EquivalenceUpToPermutation { lhs, rhs, perm: p.to_vec() },
        }
    };
    for (position, element) in elements.iter().enumerate() {
        let SymElement::Gate(gate) = element else { continue };
        let wires = gate_wires(gate);
        // gate-drop
        {
            let mut kept = elements.to_vec();
            kept.remove(position);
            let cone = forward_cone(elements, position + 1, &wires, width);
            out.push(Candidate {
                family: OperatorFamily::GateDrop,
                goal: remake_goal(rebuild(circuit.num_qubits(), kept)),
                site: format!("{side_name} gate {position} ({}) dropped", gate.name()),
                expected: Expectation::Wires(expected_logical_wires(
                    cone,
                    mutated_is_lhs,
                    perm,
                    width,
                )),
            });
        }
        // gate-duplicate
        {
            let mut doubled = elements.to_vec();
            doubled.insert(position + 1, element.clone());
            let cone = forward_cone(elements, position + 1, &wires, width);
            out.push(Candidate {
                family: OperatorFamily::GateDuplicate,
                goal: remake_goal(rebuild(circuit.num_qubits(), doubled)),
                site: format!("{side_name} gate {position} ({}) duplicated", gate.name()),
                expected: Expectation::Wires(expected_logical_wires(
                    cone,
                    mutated_is_lhs,
                    perm,
                    width,
                )),
            });
        }
        // gate-reorder (adjacent pair; identical gates are a no-op swap)
        if let Some(SymElement::Gate(next)) = elements.get(position + 1) {
            if next != gate {
                let mut swapped = elements.to_vec();
                swapped.swap(position, position + 1);
                let mut seeds = wires.clone();
                seeds.extend(gate_wires(next));
                let cone = forward_cone(elements, position + 2, &seeds, width);
                out.push(Candidate {
                    family: OperatorFamily::GateReorder,
                    goal: remake_goal(rebuild(circuit.num_qubits(), swapped)),
                    site: format!(
                        "{side_name} gates {position},{} ({},{}) reordered",
                        position + 1,
                        gate.name(),
                        next.name()
                    ),
                    expected: Expectation::Wires(expected_logical_wires(
                        cone,
                        mutated_is_lhs,
                        perm,
                        width,
                    )),
                });
            }
        }
        // wrong-decomposition
        if let Some((wounded, label)) = wrong_variant(gate) {
            let mut seeds = wires.clone();
            seeds.extend(gate_wires(&wounded));
            let cone = forward_cone(elements, position + 1, &seeds, width);
            let mut replaced = elements.to_vec();
            replaced[position] = SymElement::Gate(wounded);
            out.push(Candidate {
                family: OperatorFamily::WrongDecomposition,
                goal: remake_goal(rebuild(circuit.num_qubits(), replaced)),
                site: format!("{side_name} gate {position} ({}): {label}", gate.name()),
                expected: Expectation::Wires(expected_logical_wires(
                    cone,
                    mutated_is_lhs,
                    perm,
                    width,
                )),
            });
        }
    }
}

/// All candidate wounds of one goal, across every applicable operator
/// family.
fn goal_candidates(goal: &Goal) -> Vec<Candidate> {
    let mut out = Vec::new();
    match goal {
        Goal::Equivalence { lhs, rhs } => {
            side_candidates("lhs", lhs, rhs, true, None, &mut out);
            side_candidates("rhs", rhs, lhs, false, None, &mut out);
        }
        Goal::EquivalenceUpToPermutation { lhs, rhs, perm } => {
            side_candidates("lhs", lhs, rhs, true, Some(perm), &mut out);
            side_candidates("rhs", rhs, lhs, false, Some(perm), &mut out);
            // wire-map-swap: exchange two distinct map entries.
            for i in 0..perm.len() {
                for j in (i + 1)..perm.len() {
                    if perm[i] == perm[j] {
                        continue;
                    }
                    let mut swapped = perm.clone();
                    swapped.swap(i, j);
                    out.push(Candidate {
                        family: OperatorFamily::WireMapSwap,
                        goal: Goal::EquivalenceUpToPermutation {
                            lhs: lhs.clone(),
                            rhs: rhs.clone(),
                            perm: swapped,
                        },
                        site: format!("wire map entries {i},{j} swapped"),
                        expected: Expectation::WireMap(vec![i, j]),
                    });
                }
            }
            // wire-map-off-by-one: increment one entry.
            for i in 0..perm.len() {
                let mut shifted = perm.clone();
                shifted[i] += 1;
                out.push(Candidate {
                    family: OperatorFamily::WireMapOffByOne,
                    goal: Goal::EquivalenceUpToPermutation {
                        lhs: lhs.clone(),
                        rhs: rhs.clone(),
                        perm: shifted,
                    },
                    site: format!("wire map entry {i} off by one"),
                    expected: Expectation::WireMap(vec![i]),
                });
            }
            // identity-transform: the routed side is emptied while the map
            // still claims the permutation happened.
            if !rhs.is_empty() {
                let removed: Vec<usize> = rhs
                    .elements()
                    .iter()
                    .flat_map(|e| match e {
                        SymElement::Gate(g) => gate_wires(g),
                        SymElement::Segment { excluded_qubits, .. } => {
                            (0..rhs.num_qubits()).filter(|q| !excluded_qubits.contains(q)).collect()
                        }
                    })
                    .collect();
                let mut affected: BTreeSet<usize> = removed.into_iter().collect();
                affected.extend((0..perm.len()).filter(|&l| perm[l] != l));
                out.push(Candidate {
                    family: OperatorFamily::IdentityTransform,
                    goal: Goal::EquivalenceUpToPermutation {
                        lhs: lhs.clone(),
                        rhs: SymCircuit::new(rhs.num_qubits()),
                        perm: perm.clone(),
                    },
                    site: "routed side emptied, wire map kept".to_string(),
                    expected: Expectation::Wires(affected.into_iter().collect()),
                });
            }
        }
        Goal::TerminationDecrease { consumed, kept } => {
            // identity-transform: the loop body pushes back everything it
            // consumed (kept = consumed), or consumes nothing at all.
            out.push(Candidate {
                family: OperatorFamily::IdentityTransform,
                goal: Goal::TerminationDecrease { consumed: *consumed, kept: *consumed },
                site: format!("kept raised to consumed ({consumed})"),
                expected: Expectation::Termination,
            });
            if *kept == 0 {
                out.push(Candidate {
                    family: OperatorFamily::IdentityTransform,
                    goal: Goal::TerminationDecrease { consumed: 0, kept: 0 },
                    site: "branch consumes nothing".to_string(),
                    expected: Expectation::Termination,
                });
            }
        }
        // The trivial goals have no falsifiable structure to wound.
        Goal::AlwaysTerminates | Goal::CircuitUnchanged => {}
    }
    out
}

/// Collects every segment name of a circuit with the union of its excluded
/// qubits (same name on both sides of a goal denotes the same subcircuit,
/// so the union keeps the instantiation consistent).
fn collect_segments(circuit: &SymCircuit, into: &mut BTreeMap<String, BTreeSet<usize>>) {
    for element in circuit.elements() {
        if let SymElement::Segment { name, excluded_qubits } = element {
            into.entry(name.clone()).or_default().extend(excluded_qubits.iter().copied());
        }
    }
}

/// Deterministically generates one concrete gate list per segment name:
/// variant 0 is the empty (identity) instantiation, later variants draw
/// 1–2 gates from a small palette on the segment's allowed qubits.
fn segment_assignment(
    segments: &BTreeMap<String, BTreeSet<usize>>,
    width: usize,
    seed: u64,
    variant: u64,
) -> BTreeMap<String, Vec<Gate>> {
    segments
        .iter()
        .map(|(name, excluded)| {
            let allowed: Vec<usize> = (0..width).filter(|q| !excluded.contains(q)).collect();
            let mut gates = Vec::new();
            if variant > 0 && !allowed.is_empty() {
                let mut rng = XorShift::new(
                    seed ^ fnv1a(name.as_bytes()) ^ variant.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                for _ in 0..=rng.below(2) {
                    let q = allowed[rng.below(allowed.len())];
                    match rng.below(4) {
                        0 => gates.push(Gate::new(GateKind::H, vec![q])),
                        1 => gates.push(Gate::new(GateKind::T, vec![q])),
                        2 => gates.push(Gate::new(GateKind::X, vec![q])),
                        _ if allowed.len() >= 2 => {
                            let candidates: Vec<usize> =
                                allowed.iter().copied().filter(|&p| p != q).collect();
                            let p = candidates[rng.below(candidates.len())];
                            gates.push(Gate::new(GateKind::CX, vec![q, p]));
                        }
                        _ => gates.push(Gate::new(GateKind::H, vec![q])),
                    }
                }
            }
            (name.clone(), gates)
        })
        .collect()
}

/// Instantiates a symbolic circuit to a concrete one over `width` wires,
/// substituting each segment by its assigned gates (pre-filtered to the
/// segment's allowed qubits via the exclusion union).
fn concretize(
    circuit: &SymCircuit,
    width: usize,
    assignment: &BTreeMap<String, Vec<Gate>>,
) -> Option<Circuit> {
    let mut num_clbits = 0;
    let mut gates: Vec<Gate> = Vec::new();
    for element in circuit.elements() {
        match element {
            SymElement::Gate(gate) => gates.push(gate.clone()),
            SymElement::Segment { name, .. } => {
                gates.extend(assignment.get(name)?.iter().cloned());
            }
        }
    }
    for gate in &gates {
        for &c in &gate.clbits {
            num_clbits = num_clbits.max(c + 1);
        }
        if let Some(condition) = &gate.condition {
            if let qc_ir::ConditionKind::Classical { bit, .. } = condition.kind {
                num_clbits = num_clbits.max(bit + 1);
            }
        }
    }
    let mut concrete = Circuit::with_clbits(width, num_clbits);
    for gate in gates {
        concrete.push(gate).ok()?;
    }
    Some(concrete)
}

/// Screens a mutated goal against the numeric unitary oracle: the wound is
/// kept only when some deterministic segment instantiation witnesses
/// non-equivalence.  Termination wounds are exact by construction.
fn screen_candidate(goal: &Goal, seed: u64) -> Screen {
    let (lhs, rhs, perm) = match goal {
        Goal::Equivalence { lhs, rhs } => (lhs, rhs, None),
        Goal::EquivalenceUpToPermutation { lhs, rhs, perm } => (lhs, rhs, Some(perm.as_slice())),
        Goal::TerminationDecrease { consumed, kept } => {
            return if kept >= consumed { Screen::Wound } else { Screen::Equivalent };
        }
        Goal::AlwaysTerminates | Goal::CircuitUnchanged => return Screen::Equivalent,
    };
    let width = lhs.num_qubits().max(rhs.num_qubits());
    let mut segments = BTreeMap::new();
    collect_segments(lhs, &mut segments);
    collect_segments(rhs, &mut segments);
    let mut undecided = false;
    for variant in 0..3u64 {
        let assignment = segment_assignment(&segments, width, seed, variant);
        let (Some(l), Some(r)) =
            (concretize(lhs, width, &assignment), concretize(rhs, width, &assignment))
        else {
            undecided = true;
            continue;
        };
        let verdict = match perm {
            None => circuits_equivalent(&l, &r),
            Some(p) => equivalent_up_to_permutation(&l, &r, p),
        };
        match verdict {
            Ok(false) => return Screen::Wound,
            Ok(true) => {}
            Err(_) => undecided = true,
        }
    }
    if undecided {
        Screen::Unknown
    } else {
        Screen::Equivalent
    }
}

/// Enumerates the mutant corpus: every `(pass × operator × site)` wound of
/// the registry's obligations that survives the equivalent-mutant filter,
/// in deterministic registry order.  `pass_filter` restricts to one pass.
pub fn enumerate_mutants(seed: u64, pass_filter: Option<&str>) -> MutantEnumeration {
    let mut mutants = Vec::new();
    let mut skipped_equivalent = 0;
    let mut skipped_unknown = 0;
    for pass in verified_passes() {
        if let Some(filter) = pass_filter {
            if pass.name != filter {
                continue;
            }
        }
        let obligations = (pass.obligations)();
        for (obligation_index, obligation) in obligations.iter().enumerate() {
            for candidate in goal_candidates(&obligation.goal) {
                match screen_candidate(&candidate.goal, seed) {
                    Screen::Equivalent => skipped_equivalent += 1,
                    Screen::Unknown => skipped_unknown += 1,
                    Screen::Wound => {
                        let mut wounded = obligations.clone();
                        wounded[obligation_index].goal = candidate.goal;
                        mutants.push(Mutant {
                            id: mutants.len(),
                            pass: pass.name,
                            family: candidate.family,
                            obligation_index,
                            obligation: obligation.description.clone(),
                            site: candidate.site,
                            expected: candidate.expected,
                            obligations: wounded,
                        });
                    }
                }
            }
        }
    }
    MutantEnumeration { mutants, skipped_equivalent, skipped_unknown }
}

/// One backend's run over a mutant's wounded obligation list.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// The backend selection the obligations were discharged under.
    pub selection: BackendSelection,
    /// Whether the walk ended in a refutation (not merely `Unknown`).
    pub refuted: bool,
    /// Index of the first failing obligation, when the walk failed.
    pub failed_index: Option<usize>,
    /// The fold's failure text (subgoal description plus counterexample).
    pub failure: Option<String>,
    /// The structured fault coordinates carried by the refutation.
    pub site: Option<FaultSite>,
    /// Wall-clock time of the walk (machine-dependent; stripped from the
    /// committed artifact).
    pub time_seconds: f64,
}

/// The campaign outcome for one mutant across every backend routing.
#[derive(Debug, Clone)]
pub struct MutantOutcome {
    /// Mutant id (enumeration order).
    pub id: usize,
    /// The wounded registry pass.
    pub pass: &'static str,
    /// Operator family of the wound.
    pub family: OperatorFamily,
    /// Index of the wounded obligation.
    pub obligation_index: usize,
    /// Description of the wounded obligation.
    pub obligation: String,
    /// Wound site description.
    pub site: String,
    /// Both backends refuted the wound at the wounded obligation.
    pub detected: bool,
    /// Every refutation carried structured fault coordinates.
    pub localized: bool,
    /// Every reported coordinate lands inside the wound's expected set
    /// (forward cone / remapped entries / termination measure).
    pub precise: bool,
    /// The per-backend runs, in [`BackendSelection::ALL`] order.
    pub runs: Vec<BackendRun>,
}

/// Configuration of a registry campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignConfig {
    /// Campaign seed (drives segment instantiation in the filter).
    pub seed: u64,
    /// Cap on the number of mutants run (enumeration order prefix).
    pub max_mutants: Option<usize>,
    /// Restrict to one registry pass.
    pub pass_filter: Option<String>,
}

/// The full registry-campaign report.
pub struct CampaignReport {
    /// The seed the campaign ran with.
    pub seed: u64,
    /// Per-mutant outcomes, in enumeration order.
    pub outcomes: Vec<MutantOutcome>,
    /// How many genuine mutants the enumeration produced *before* any
    /// `max_mutants` truncation — when this exceeds `outcomes.len()` the
    /// campaign covered only an enumeration-order prefix, and every report
    /// surface must say so (no silent caps).
    pub enumerated: usize,
    /// Candidates rejected as equivalent mutants.
    pub skipped_equivalent: usize,
    /// Candidates the numeric oracle could not decide.
    pub skipped_unknown: usize,
}

impl CampaignReport {
    /// Number of mutants run.
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether `max_mutants` truncated the campaign to a prefix of the
    /// enumeration.
    pub fn truncated(&self) -> bool {
        self.enumerated > self.outcomes.len()
    }

    /// Number of detected (refuted-by-both-backends) mutants.
    pub fn detected(&self) -> usize {
        self.outcomes.iter().filter(|o| o.detected).count()
    }

    /// The surviving mutants (wounds the verifier failed to refute).
    pub fn survivors(&self) -> Vec<&MutantOutcome> {
        self.outcomes.iter().filter(|o| !o.detected).collect()
    }

    /// Detected fraction (1.0 on an empty campaign).
    pub fn detection_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            1.0
        } else {
            self.detected() as f64 / self.outcomes.len() as f64
        }
    }

    /// Fraction of detected mutants whose refutations carried precise
    /// structured coordinates (the explanation-quality score).
    pub fn explanation_quality(&self) -> f64 {
        let detected = self.detected();
        if detected == 0 {
            return if self.outcomes.is_empty() { 1.0 } else { 0.0 };
        }
        self.outcomes.iter().filter(|o| o.detected && o.localized && o.precise).count() as f64
            / detected as f64
    }

    /// Operator families present in the campaign, in artifact order.
    pub fn families(&self) -> Vec<OperatorFamily> {
        OperatorFamily::ALL
            .into_iter()
            .filter(|f| self.outcomes.iter().any(|o| o.family == *f))
            .collect()
    }
}

/// Discharges one mutant's wounded obligation list under one backend with
/// the exact `verify_pass` walk semantics, capturing the first failing
/// verdict and its fault site.
fn run_mutant_backend(mutant: &Mutant, selection: BackendSelection) -> BackendRun {
    let start = Instant::now();
    let mut discharger = Discharger::with_selection(selection);
    discharger.prewarm(pass_register_width(&mutant.obligations));
    let mut stream: Vec<(Verdict, String)> = Vec::new();
    let mut failing: Option<(usize, Verdict)> = None;
    for (index, obligation) in mutant.obligations.iter().enumerate() {
        let verdict = discharger.discharge(&obligation.goal);
        let failed = !verdict.is_proved();
        stream.push((verdict.clone(), obligation.description.clone()));
        if failed {
            failing = Some((index, verdict));
            break;
        }
    }
    let fold = fold_verdict_stream(stream);
    let (failed_index, refuted, site) = match &failing {
        Some((index, verdict)) => (Some(*index), verdict.is_refuted(), verdict.fault_site()),
        None => (None, false, None),
    };
    debug_assert_eq!(fold.verified, failing.is_none());
    BackendRun {
        selection,
        refuted,
        failed_index,
        failure: fold.failure,
        site,
        time_seconds: start.elapsed().as_secs_f64(),
    }
}

/// Runs one mutant through every backend routing and classifies the outcome.
fn run_mutant(mutant: &Mutant) -> MutantOutcome {
    let runs: Vec<BackendRun> =
        BackendSelection::ALL.iter().map(|s| run_mutant_backend(mutant, *s)).collect();
    let detected =
        runs.iter().all(|r| r.refuted && r.failed_index == Some(mutant.obligation_index));
    let localized = detected && runs.iter().all(|r| r.site.is_some());
    let precise = localized
        && runs.iter().all(|r| r.site.as_ref().is_some_and(|s| mutant.expected.matches(s)));
    MutantOutcome {
        id: mutant.id,
        pass: mutant.pass,
        family: mutant.family,
        obligation_index: mutant.obligation_index,
        obligation: mutant.obligation.clone(),
        site: mutant.site.clone(),
        detected,
        localized,
        precise,
        runs,
    }
}

/// Runs the registry campaign: enumerate the corpus, then discharge every
/// mutant through every backend routing in parallel (report order stays
/// deterministic — outcomes come back in enumeration order).
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let enumeration = enumerate_mutants(config.seed, config.pass_filter.as_deref());
    let mut mutants = enumeration.mutants;
    let enumerated = mutants.len();
    if let Some(max) = config.max_mutants {
        mutants.truncate(max);
    }
    let outcomes: Vec<MutantOutcome> = mutants.par_iter().map(run_mutant).collect();
    CampaignReport {
        seed: config.seed,
        outcomes,
        enumerated,
        skipped_equivalent: enumeration.skipped_equivalent,
        skipped_unknown: enumeration.skipped_unknown,
    }
}

// ---------------------------------------------------------------------------
// End-to-end pipeline campaign
// ---------------------------------------------------------------------------

/// One named input circuit for the pipeline campaign.
pub struct PipelineInput {
    /// Circuit name (recorded in the artifact).
    pub name: String,
    /// The input circuit.
    pub circuit: Circuit,
}

/// The fixed fault matrix applied to every pipeline-campaign input.
pub fn pipeline_faults() -> Vec<PipelineFault> {
    vec![
        PipelineFault::DropGate { index: 1 },
        PipelineFault::DuplicateGate { index: 0 },
        PipelineFault::SwapAdjacentGates { index: 0 },
        PipelineFault::FlipCxDirection { nth: 0 },
        PipelineFault::CorruptFinalLayout { a: 0, b: 1 },
    ]
}

/// Outcome of one end-to-end pipeline mutant: a compilation corrupted by a
/// [`SabotagePass`], certified, and pushed through the certificate
/// checker.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// The input circuit's name.
    pub circuit: String,
    /// Description of the injected fault.
    pub fault: String,
    /// Whether the fault semantically changed the compilation (numeric
    /// oracle on the output circuit, or a changed end-to-end wire map).  A
    /// non-semantic fault (e.g. dropping a gate from an empty region) is
    /// recorded but not counted against detection.
    pub semantic: bool,
    /// Whether [`check_certificate`] refused the corrupted compilation's
    /// certificate.
    pub refused: bool,
    /// `semantic && refused` — the certificate checker caught the fault.
    pub detected: bool,
    /// The checker's refusal message (or a pipeline error).
    pub error: Option<String>,
}

/// Runs the end-to-end campaign: for each input × fault, compile through
/// the standard verified pipeline with a [`SabotagePass`] appended, certify
/// the corrupted result against the *honest* pipeline schedule, and require
/// [`check_certificate`] to refuse it.
pub fn run_pipeline_campaign(
    inputs: &[PipelineInput],
    device: &str,
    seed: u64,
    selection: BackendSelection,
) -> Vec<PipelineOutcome> {
    let mut outcomes = Vec::new();
    let Ok(coupling) = CouplingMap::from_spec(device) else {
        return outcomes;
    };
    let pipeline: Vec<String> =
        giallar_pipeline_pass_names(&coupling, seed).into_iter().map(str::to_string).collect();
    for input in inputs {
        let Ok(honest) = giallar_transpile(&input.circuit, &coupling, seed) else {
            continue;
        };
        for fault in pipeline_faults() {
            let mut manager = giallar_pass_manager(&coupling, seed);
            manager.append(Box::new(SabotagePass::new(fault.clone())));
            let corrupted = match manager.run(&input.circuit) {
                Ok(result) => result,
                Err(error) => {
                    outcomes.push(PipelineOutcome {
                        circuit: input.name.clone(),
                        fault: fault.describe(),
                        semantic: false,
                        refused: false,
                        detected: false,
                        error: Some(format!("sabotaged pipeline failed: {error}")),
                    });
                    continue;
                }
            };
            let width = corrupted.circuit.num_qubits().max(input.circuit.num_qubits());
            let semantic = match fault {
                PipelineFault::CorruptFinalLayout { .. } => {
                    end_to_end_wire_map(&corrupted, width) != end_to_end_wire_map(&honest, width)
                }
                _ => !circuits_equivalent(&corrupted.circuit, &honest.circuit).unwrap_or(true),
            };
            let certificate = certify_compilation(
                &input.name,
                device,
                seed,
                &input.circuit,
                &corrupted,
                &pipeline,
                selection,
            );
            let check = check_certificate(&certificate);
            let refused = check.is_err();
            outcomes.push(PipelineOutcome {
                circuit: input.name.clone(),
                fault: fault.describe(),
                semantic,
                refused,
                detected: semantic && refused,
                error: check.err(),
            });
        }
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_parsing_accepts_decimal_hex_and_arbitrary_strings() {
        assert_eq!(parse_seed("42"), 42);
        assert_eq!(parse_seed("0xff"), 255);
        // `0xg1allar` is not valid hex: it hashes, deterministically.
        assert_eq!(parse_seed("0xg1allar"), parse_seed("0xg1allar"));
        assert_ne!(parse_seed("0xg1allar"), parse_seed("0xg1allaz"));
    }

    #[test]
    fn corpus_spans_the_required_families_and_size() {
        let enumeration = enumerate_mutants(parse_seed("0xg1allar"), None);
        assert!(
            enumeration.mutants.len() >= 100,
            "corpus has only {} mutants",
            enumeration.mutants.len()
        );
        let families: BTreeSet<OperatorFamily> =
            enumeration.mutants.iter().map(|m| m.family).collect();
        assert!(families.len() >= 5, "only {} operator families: {families:?}", families.len());
        // The equivalent-mutant filter is doing real work: barrier drops,
        // commuting reorders, and symmetric flips must be screened out.
        assert!(enumeration.skipped_equivalent > 0);
    }

    #[test]
    fn enumeration_is_deterministic_per_seed() {
        let seed = parse_seed("0xg1allar");
        let a = enumerate_mutants(seed, None);
        let b = enumerate_mutants(seed, None);
        assert_eq!(a.mutants.len(), b.mutants.len());
        for (x, y) in a.mutants.iter().zip(&b.mutants) {
            assert_eq!(x.pass, y.pass);
            assert_eq!(x.family, y.family);
            assert_eq!(x.site, y.site);
            assert_eq!(x.obligation_index, y.obligation_index);
        }
    }

    #[test]
    fn pass_filter_restricts_the_corpus() {
        let enumeration = enumerate_mutants(0, Some("CXCancellation"));
        assert!(!enumeration.mutants.is_empty());
        assert!(enumeration.mutants.iter().all(|m| m.pass == "CXCancellation"));
    }

    #[test]
    fn a_sampled_campaign_detects_and_localizes_every_wound() {
        // The full corpus runs in the release-mode CLI and CI; here a
        // bounded prefix keeps the debug-mode test fast while still
        // exercising the driver end to end.
        let report = run_campaign(&CampaignConfig {
            seed: parse_seed("0xg1allar"),
            max_mutants: Some(24),
            pass_filter: None,
        });
        assert_eq!(report.total(), 24);
        assert_eq!(report.detected(), 24, "survivors: {:?}", report.survivors().len());
        assert!(report.outcomes.iter().all(|o| o.localized), "a refutation lost its fault site");
        assert!(report.outcomes.iter().all(|o| o.precise), "a fault site escaped its cone");
        assert_eq!(report.detection_rate(), 1.0);
        assert_eq!(report.explanation_quality(), 1.0);
    }

    #[test]
    fn termination_wounds_are_refuted_with_termination_sites() {
        let report = run_campaign(&CampaignConfig {
            seed: 7,
            max_mutants: None,
            pass_filter: Some("CXCancellation".to_string()),
        });
        assert!(report.total() > 0);
        assert_eq!(report.detected(), report.total());
        let termination: Vec<_> = report
            .outcomes
            .iter()
            .filter(|o| o.family == OperatorFamily::IdentityTransform)
            .collect();
        assert!(!termination.is_empty());
        for outcome in termination {
            for run in &outcome.runs {
                assert!(
                    matches!(run.site, Some(FaultSite::Termination { .. })),
                    "expected a termination site, got {:?}",
                    run.site
                );
            }
        }
    }
}
