//! Proof obligations and the virtual pass classes that generate them.

use qc_symbolic::SymCircuit;
use serde::{Deserialize, Serialize};

/// The virtual class a verified pass inherits from, which determines the
/// specification Giallar generates for it (§6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PassClass {
    /// `GeneralPass`: output circuit equivalent to the input circuit.  This
    /// covers layout, basis change, optimization, synthesis and assorted
    /// passes.
    General,
    /// `RoutingPass`: output equivalent to the input up to the tracked qubit
    /// permutation, and every 2-qubit gate respects the coupling map.
    Routing,
    /// `AnalysisPass`: the circuit is returned unchanged.
    Analysis,
}

/// One proof goal handed to the solver.
#[derive(Debug, Clone)]
pub enum Goal {
    /// The two symbolic circuits are equivalent on every wire.
    Equivalence {
        /// Left-hand circuit (typically `output_new ; remain_new ; rest`).
        lhs: SymCircuit,
        /// Right-hand circuit (typically `remain_old ; rest`, i.e. the input).
        rhs: SymCircuit,
    },
    /// The two symbolic circuits are equivalent up to the given final qubit
    /// permutation (`perm[wire] = physical location after routing`).
    EquivalenceUpToPermutation {
        /// The original circuit fragment.
        lhs: SymCircuit,
        /// The routed circuit fragment.
        rhs: SymCircuit,
        /// Final layout as a logical→physical vector.
        perm: Vec<usize>,
    },
    /// A while-loop iteration must strictly decrease the number of remaining
    /// gates: it consumed `consumed` gates and kept `kept` of them.
    TerminationDecrease {
        /// Gates removed from the remaining list this iteration.
        consumed: usize,
        /// Gates pushed back onto the remaining list this iteration.
        kept: usize,
    },
    /// Range-based loops (the `iterate_all_gates` / `collect_runs` templates)
    /// terminate by construction.
    AlwaysTerminates,
    /// Analysis passes must leave the circuit untouched; the symbolic output
    /// register must equal the symbolic input register.
    CircuitUnchanged,
}

/// A named proof obligation for one branch or side condition of a pass.
#[derive(Debug, Clone)]
pub struct ProofObligation {
    /// Human-readable description (“branch: adjacent CX pair cancelled”).
    pub description: String,
    /// The goal to discharge.
    pub goal: Goal,
}

impl ProofObligation {
    /// Creates an obligation.
    pub fn new(description: &str, goal: Goal) -> Self {
        ProofObligation { description: description.to_string(), goal }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obligations_carry_descriptions() {
        let ob =
            ProofObligation::new("termination", Goal::TerminationDecrease { consumed: 1, kept: 0 });
        assert_eq!(ob.description, "termination");
        assert!(matches!(ob.goal, Goal::TerminationDecrease { consumed: 1, kept: 0 }));
    }

    #[test]
    fn pass_classes_are_distinct() {
        assert_ne!(PassClass::General, PassClass::Routing);
        assert_ne!(PassClass::General, PassClass::Analysis);
    }
}
