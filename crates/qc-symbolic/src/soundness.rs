//! Soundness of the rewrite-rule library.
//!
//! The paper proves every rewrite rule once and for all in Coq against the
//! QWire matrix library.  Offline, this module performs the equivalent
//! validation against the dense matrix semantics of [`qc_ir::unitary`]: every
//! circuit identity backing a rule is checked to be a true unitary equality,
//! both on its minimal register and embedded at arbitrary positions inside a
//! larger register (the paper's "extend to the global circuit" lemma).

use qc_ir::unitary::{circuits_equivalent, equivalent_up_to_permutation};
use qc_ir::Circuit;

use crate::rules::{rule_identities, RuleIdentity};

/// The outcome of checking one identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdentityCheck {
    /// Identity name.
    pub name: String,
    /// Whether the identity holds on its minimal register.
    pub holds: bool,
    /// Whether the identity still holds when embedded in a larger register.
    pub holds_embedded: bool,
}

/// Embeds a small circuit into a larger register by relabelling its qubits.
fn embed(circuit: &Circuit, mapping: &[usize], num_qubits: usize) -> Circuit {
    circuit.map_qubits(mapping, num_qubits).expect("embedding mapping is valid")
}

/// Checks a single identity against the matrix semantics.
pub fn check_identity(identity: &RuleIdentity) -> IdentityCheck {
    let holds = match &identity.permutation {
        None => circuits_equivalent(&identity.lhs, &identity.rhs).unwrap_or(false),
        Some(perm) => {
            equivalent_up_to_permutation(&identity.rhs, &identity.lhs, perm).unwrap_or(false)
        }
    };

    // Embedding check: place the identity at a different position inside a
    // 4-qubit register (qubit i ↦ 3 - i keeps operands distinct).
    let n = identity.lhs.num_qubits().max(identity.rhs.num_qubits());
    let mapping: Vec<usize> = (0..n).map(|q| 3 - q).collect();
    let lhs_embedded = embed(&identity.lhs, &mapping, 4);
    let rhs_embedded = embed(&identity.rhs, &mapping, 4);
    let holds_embedded = match &identity.permutation {
        None => circuits_equivalent(&lhs_embedded, &rhs_embedded).unwrap_or(false),
        Some(perm) => {
            // Remap the permutation through the embedding.
            let mut full_perm: Vec<usize> = (0..4).collect();
            for (logical, &target) in perm.iter().enumerate() {
                full_perm[mapping[logical]] = mapping[target];
            }
            equivalent_up_to_permutation(&rhs_embedded, &lhs_embedded, &full_perm).unwrap_or(false)
        }
    };

    IdentityCheck { name: identity.name.clone(), holds, holds_embedded }
}

/// Checks every identity in the library and returns the per-identity results.
pub fn check_all_identities() -> Vec<IdentityCheck> {
    rule_identities().iter().map(check_identity).collect()
}

/// Returns `true` when every rewrite rule in the library is sound.
pub fn all_rules_sound() -> bool {
    check_all_identities().iter().all(|c| c.holds && c.holds_embedded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::SymCircuit;
    use crate::equiv::{check_equivalence, check_equivalence_with_permutation};

    #[test]
    fn every_identity_is_sound_against_the_matrix_semantics() {
        for check in check_all_identities() {
            assert!(check.holds, "identity `{}` is not a unitary equality", check.name);
            assert!(
                check.holds_embedded,
                "identity `{}` fails when embedded in a larger register",
                check.name
            );
        }
    }

    #[test]
    fn all_rules_sound_summary() {
        assert!(all_rules_sound());
    }

    #[test]
    fn symbolic_checker_discharges_its_own_identities() {
        // Consistency: every identity that backs a rewrite rule must be
        // provable by the symbolic equivalence checker itself.
        for identity in rule_identities() {
            let lhs = SymCircuit::from_circuit(&identity.lhs);
            let rhs = SymCircuit::from_circuit(&identity.rhs);
            let verdict = match &identity.permutation {
                None => check_equivalence(&lhs, &rhs),
                Some(perm) => check_equivalence_with_permutation(&rhs, &lhs, perm),
            };
            assert!(
                verdict.is_proved(),
                "identity `{}` is not discharged symbolically: {verdict:?}",
                identity.name
            );
        }
    }

    #[test]
    fn a_deliberately_wrong_identity_is_caught() {
        // Sanity-check the checker itself: X;Z is not the identity.
        let mut lhs = Circuit::new(1);
        lhs.x(0).z(0);
        let identity = RuleIdentity {
            name: "bogus".to_string(),
            lhs,
            rhs: Circuit::new(1),
            permutation: None,
        };
        let check = check_identity(&identity);
        assert!(!check.holds);
    }
}
