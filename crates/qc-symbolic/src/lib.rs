//! # qc-symbolic — symbolic representation and rewriting of quantum circuits
//!
//! This crate implements §5 of the Giallar paper: a symbolic execution for
//! quantum circuits that side-steps the exponential matrix semantics, plus a
//! library of qubit-local rewrite rules (cancellation, commutation, swap,
//! direction-reversal) whose soundness is established against the dense
//! matrix semantics of [`qc_ir::unitary`] once and for all.
//!
//! A multi-qubit register is represented as an array of symbolic qubit terms.
//! Applying a 1-qubit gate `U` to qubit term `q` yields the term `U(q)`
//! (the paper's `app1q`); applying a 2-qubit gate yields one term per output
//! wire (`app2q(U, q1, q2, k)` — here encoded as `U_1(q1, q2)` and
//! `U_2(q1, q2)`).  Opaque circuit *segments* (the `C₁`, `C₂` fragments that
//! appear in loop-invariant proof goals) become uninterpreted functions over
//! the qubits they may touch, so that the `next_gate` specification
//! ("no gate in between shares a qubit with gate 0") turns into a purely
//! structural fact the congruence closure can exploit.
//!
//! # Example
//!
//! ```
//! use qc_ir::Circuit;
//! use qc_symbolic::{check_equivalence, SymCircuit};
//!
//! // Two adjacent CNOTs cancel (the CXCancellation proof goal).
//! let mut lhs = Circuit::new(2);
//! lhs.cx(0, 1).cx(0, 1);
//! let rhs = Circuit::new(2);
//! let verdict = check_equivalence(&SymCircuit::from_circuit(&lhs), &SymCircuit::from_circuit(&rhs));
//! assert!(verdict.is_proved());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod equiv;
pub mod exec;
pub mod rules;
pub mod soundness;

pub use circuit::{SymCircuit, SymElement};
pub use equiv::{
    check_equivalence, check_equivalence_up_to_final_measurements,
    check_equivalence_with_permutation, EquivalenceChecker, WireEvidence,
};
pub use exec::SymbolicExecutor;
pub use rules::{
    circuit_rewrite_rules, circuit_rewrite_rules_static, rule_identities, rule_library_fingerprint,
    ClassifiedRule, RuleClass, RuleIdentity, RULE_LIBRARY_VERSION,
};
pub use smtlite::Verdict;
pub use soundness::{all_rules_sound, check_all_identities, IdentityCheck};
