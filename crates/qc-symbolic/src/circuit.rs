//! Symbolic circuits: concrete gates interleaved with opaque segments.
//!
//! Proof goals produced by Giallar's loop templates mention circuit
//! fragments that the pass never inspects (the "remaining gates" between two
//! cancelled CNOTs, the unscanned suffix of the input, …).  A [`SymCircuit`]
//! represents such a fragment as a [`SymElement::Segment`]: an uninterpreted
//! sub-circuit together with the set of qubits it is known *not* to touch.

use qc_ir::{Circuit, Gate};
use serde::{Deserialize, Serialize};

/// One element of a symbolic circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SymElement {
    /// A concrete gate instruction.
    Gate(Gate),
    /// An opaque circuit segment.
    Segment {
        /// Name of the segment (e.g. `"C1"`); equal names denote the same
        /// (unknown) sub-circuit.
        name: String,
        /// Qubits the segment is known not to act on (from utility
        /// specifications such as `next_gate`).
        excluded_qubits: Vec<usize>,
    },
}

impl SymElement {
    /// Builds a segment element.
    pub fn segment(name: &str, excluded_qubits: Vec<usize>) -> Self {
        SymElement::Segment { name: name.to_string(), excluded_qubits }
    }

    /// A canonical textual form of the element, stable across releases.
    /// Used by the incremental verification cache to fingerprint proof
    /// obligations.
    pub fn canonical_form(&self) -> String {
        match self {
            SymElement::Gate(gate) => format!("g({})", gate.canonical_form()),
            SymElement::Segment { name, excluded_qubits } => {
                let excl: Vec<String> = excluded_qubits.iter().map(usize::to_string).collect();
                format!("seg({name};excl:{})", excl.join(","))
            }
        }
    }
}

/// A circuit whose gates may be interleaved with opaque segments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymCircuit {
    num_qubits: usize,
    elements: Vec<SymElement>,
}

impl SymCircuit {
    /// Creates an empty symbolic circuit.
    pub fn new(num_qubits: usize) -> Self {
        SymCircuit { num_qubits, elements: Vec::new() }
    }

    /// Wraps a fully concrete circuit.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        SymCircuit {
            num_qubits: circuit.num_qubits(),
            elements: circuit.iter().cloned().map(SymElement::Gate).collect(),
        }
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The elements in program order.
    pub fn elements(&self) -> &[SymElement] {
        &self.elements
    }

    /// Number of elements (gates plus segments).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` when the circuit has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Appends a concrete gate.
    pub fn push_gate(&mut self, gate: Gate) -> &mut Self {
        self.elements.push(SymElement::Gate(gate));
        self
    }

    /// Appends an opaque segment known not to touch `excluded_qubits`.
    pub fn push_segment(&mut self, name: &str, excluded_qubits: Vec<usize>) -> &mut Self {
        self.elements.push(SymElement::segment(name, excluded_qubits));
        self
    }

    /// Appends every gate of a concrete circuit.
    pub fn push_circuit(&mut self, circuit: &Circuit) -> &mut Self {
        for gate in circuit.iter() {
            self.push_gate(gate.clone());
        }
        self
    }

    /// Concatenates two symbolic circuits.
    pub fn concatenated(&self, other: &SymCircuit) -> SymCircuit {
        let mut out = self.clone();
        out.elements.extend(other.elements.iter().cloned());
        out.num_qubits = out.num_qubits.max(other.num_qubits);
        out
    }

    /// A canonical textual form of the circuit (register width plus every
    /// element in program order), stable across releases.  Two symbolic
    /// circuits render identically if and only if they are structurally
    /// equal, so the incremental verification cache can fingerprint proof
    /// goals by this serialization.
    pub fn canonical_form(&self) -> String {
        let elements: Vec<String> = self.elements.iter().map(SymElement::canonical_form).collect();
        format!("circ(n={};[{}])", self.num_qubits, elements.join(";"))
    }

    /// Drops trailing measurement gates (used by the
    /// `RemoveFinalMeasurements` obligation).
    pub fn without_final_measurements(&self) -> SymCircuit {
        let mut elements = self.elements.clone();
        while matches!(
            elements.last(),
            Some(SymElement::Gate(g)) if g.kind == qc_ir::GateKind::Measure
        ) {
            elements.pop();
        }
        SymCircuit { num_qubits: self.num_qubits, elements }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_ir::GateKind;

    #[test]
    fn from_circuit_keeps_order() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sym = SymCircuit::from_circuit(&c);
        assert_eq!(sym.len(), 2);
        match &sym.elements()[1] {
            SymElement::Gate(g) => assert_eq!(g.kind, GateKind::CX),
            other => panic!("unexpected element {other:?}"),
        }
    }

    #[test]
    fn segments_and_concatenation() {
        let mut a = SymCircuit::new(3);
        a.push_gate(Gate::new(GateKind::CX, vec![0, 1]));
        a.push_segment("C1", vec![0, 1]);
        let mut b = SymCircuit::new(3);
        b.push_segment("C2", vec![]);
        let joined = a.concatenated(&b);
        assert_eq!(joined.len(), 3);
        assert!(!joined.is_empty());
        assert_eq!(joined.num_qubits(), 3);
    }

    #[test]
    fn final_measurements_are_stripped() {
        let mut c = Circuit::with_clbits(2, 2);
        c.h(0).measure(0, 0).measure(1, 1);
        let sym = SymCircuit::from_circuit(&c).without_final_measurements();
        assert_eq!(sym.len(), 1);
        // Non-final measurements survive.
        let mut c2 = Circuit::with_clbits(2, 2);
        c2.measure(0, 0).h(0);
        let sym2 = SymCircuit::from_circuit(&c2).without_final_measurements();
        assert_eq!(sym2.len(), 2);
    }
}
