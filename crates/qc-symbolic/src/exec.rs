//! Symbolic execution of quantum circuits onto `smtlite` terms.
//!
//! This is the `app`/`app1q`/`app2q` machinery of §5: every qubit of the
//! register is a term, a gate application replaces the terms of its operand
//! wires with new applications, and opaque segments become uninterpreted
//! functions of the wires they may touch.

use std::sync::OnceLock;

use qc_ir::{ConditionKind, Gate, GateKind};
use smtlite::{Context, TermId};

use crate::circuit::{SymCircuit, SymElement};
use crate::rules::circuit_rewrite_rules_static;

/// Canonical encoding of a gate parameter as a term symbol.
///
/// Two parameters produce the same symbol exactly when their canonical
/// formatting agrees, which is the case for parameters produced by the same
/// arithmetic on both sides of an obligation.
pub fn param_symbol(value: f64) -> String {
    format!("#par:{value:.12e}")
}

/// The function-symbol prefix used for a gate kind (without the output-wire
/// suffix used by multi-qubit gates).
pub fn gate_func_name(gate: &Gate) -> String {
    let base = gate.kind.name().to_string();
    match &gate.condition {
        None => base,
        Some(cond) => match cond.kind {
            ConditionKind::Classical { bit, value } => {
                format!("cif[c{bit}={}]{base}", value as u8)
            }
            ConditionKind::Quantum { qubit } => format!("qif[q{qubit}]{base}"),
        },
    }
}

/// A symbolic executor: owns an [`smtlite::Context`] pre-loaded with the
/// circuit rewrite rules and the initial register terms `q0, q1, …`.
#[derive(Debug, Clone)]
pub struct SymbolicExecutor {
    ctx: Context,
    initial: Vec<TermId>,
}

impl SymbolicExecutor {
    /// Creates an executor over a register of `num_qubits` symbolic qubits,
    /// with the full Giallar rewrite-rule library installed.
    ///
    /// The library is installed — compiled and head-indexed — into a
    /// template context **once per process**; each executor starts from a
    /// clone of that template, so per-pass context construction pays for a
    /// memcpy-ish clone instead of ~90 pattern compilations.
    pub fn new(num_qubits: usize) -> Self {
        static TEMPLATE: OnceLock<Context> = OnceLock::new();
        let template = TEMPLATE.get_or_init(|| {
            let mut ctx = Context::new();
            for rule in circuit_rewrite_rules_static() {
                ctx.add_rule(rule.rule.clone());
            }
            ctx
        });
        let mut ctx = template.clone();
        let initial = (0..num_qubits).map(|i| ctx.arena_mut().symbol(&format!("q{i}"))).collect();
        SymbolicExecutor { ctx, initial }
    }

    /// The initial register terms.
    pub fn initial_register(&self) -> Vec<TermId> {
        self.initial.clone()
    }

    /// Access to the underlying solver context.
    pub fn context_mut(&mut self) -> &mut Context {
        &mut self.ctx
    }

    /// Read-only access to the underlying solver context.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Symbolically executes a circuit starting from the initial register.
    pub fn execute(&mut self, circuit: &SymCircuit) -> Vec<TermId> {
        let state = self.initial_register();
        self.execute_from(circuit, &state)
    }

    /// Symbolically executes a circuit from an explicit register state.
    ///
    /// # Panics
    ///
    /// Panics when the state has fewer qubits than the circuit requires.
    pub fn execute_from(&mut self, circuit: &SymCircuit, state: &[TermId]) -> Vec<TermId> {
        assert!(state.len() >= circuit.num_qubits(), "register state smaller than the circuit");
        let mut state = state.to_vec();
        for element in circuit.elements() {
            match element {
                SymElement::Gate(gate) => self.apply_gate(gate, &mut state),
                SymElement::Segment { name, excluded_qubits } => {
                    self.apply_segment(name, excluded_qubits, &mut state);
                }
            }
        }
        state
    }

    /// Applies a single gate to the symbolic state.
    pub fn apply_gate(&mut self, gate: &Gate, state: &mut [TermId]) {
        match gate.kind {
            // Barriers have identity semantics.
            GateKind::Barrier => {}
            _ => {
                let name = gate_func_name(gate);
                let params: Vec<TermId> = gate
                    .kind
                    .params()
                    .iter()
                    .map(|&p| self.ctx.arena_mut().symbol(&param_symbol(p)))
                    .collect();
                let inputs: Vec<TermId> = gate.qubits.iter().map(|&q| state[q]).collect();
                if gate.qubits.len() == 1 {
                    // app1q(U, q)
                    let mut args = params;
                    args.extend(inputs);
                    let out = self.ctx.arena_mut().app(&name, args);
                    state[gate.qubits[0]] = out;
                } else {
                    // app2q/app3q: one output term per wire, suffix `_k`.
                    let mut outs = Vec::with_capacity(gate.qubits.len());
                    for k in 0..gate.qubits.len() {
                        let mut args = params.clone();
                        args.extend(inputs.iter().copied());
                        let out = self.ctx.arena_mut().app(&format!("{name}_{}", k + 1), args);
                        outs.push(out);
                    }
                    for (k, &q) in gate.qubits.iter().enumerate() {
                        state[q] = outs[k];
                    }
                }
            }
        }
    }

    /// Applies an opaque segment: every qubit the segment may touch receives
    /// an uninterpreted term that depends on all touched input wires.
    fn apply_segment(&mut self, name: &str, excluded: &[usize], state: &mut [TermId]) {
        let touched: Vec<usize> = (0..state.len()).filter(|q| !excluded.contains(q)).collect();
        let inputs: Vec<TermId> = touched.iter().map(|&q| state[q]).collect();
        for &q in &touched {
            let out = self.ctx.arena_mut().app(&format!("seg_{name}_{q}"), inputs.clone());
            state[q] = out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_ir::Circuit;

    #[test]
    fn ghz_produces_the_paper_terms() {
        // §5 example: GHZ = H(0); CX(0,1); CX(1,2).
        let mut ghz = Circuit::new(3);
        ghz.h(0).cx(0, 1).cx(1, 2);
        let mut exec = SymbolicExecutor::new(3);
        let out = exec.execute(&SymCircuit::from_circuit(&ghz));
        let display: Vec<String> = out.iter().map(|&t| exec.context().arena().display(t)).collect();
        assert_eq!(display[0], "cx_1(h(q0), q1)");
        assert_eq!(display[1], "cx_1(cx_2(h(q0), q1), q2)");
        assert_eq!(display[2], "cx_2(cx_2(h(q0), q1), q2)");
    }

    #[test]
    fn barriers_do_not_change_terms() {
        let mut c = Circuit::new(2);
        c.h(0).barrier_all().h(1);
        let mut plain = Circuit::new(2);
        plain.h(0).h(1);
        let mut exec = SymbolicExecutor::new(2);
        let a = exec.execute(&SymCircuit::from_circuit(&c));
        let b = exec.execute(&SymCircuit::from_circuit(&plain));
        assert_eq!(a, b);
    }

    #[test]
    fn conditioned_gates_get_distinct_functions() {
        let mut exec = SymbolicExecutor::new(1);
        let plain = Gate::new(GateKind::U1(0.5), vec![0]);
        let conditioned = Gate::new(GateKind::U1(0.5), vec![0]).with_classical_condition(0, true);
        let mut s1 = exec.initial_register();
        let mut s2 = exec.initial_register();
        exec.apply_gate(&plain, &mut s1);
        exec.apply_gate(&conditioned, &mut s2);
        assert_ne!(s1[0], s2[0]);
        // The same conditioned gate twice produces the same term.
        let mut s3 = exec.initial_register();
        exec.apply_gate(&conditioned, &mut s3);
        assert_eq!(s2[0], s3[0]);
    }

    #[test]
    fn segments_respect_exclusions() {
        let mut sym = SymCircuit::new(3);
        sym.push_segment("C1", vec![0, 1]);
        let mut exec = SymbolicExecutor::new(3);
        let init = exec.initial_register();
        let out = exec.execute(&sym);
        // Qubits 0 and 1 are untouched; qubit 2 becomes an opaque application.
        assert_eq!(out[0], init[0]);
        assert_eq!(out[1], init[1]);
        assert_ne!(out[2], init[2]);
        let shown = exec.context().arena().display(out[2]);
        assert!(shown.starts_with("seg_C1_2("), "{shown}");
    }

    #[test]
    fn identical_segments_give_identical_terms() {
        let mut a = SymCircuit::new(2);
        a.push_segment("C", vec![]);
        let mut b = SymCircuit::new(2);
        b.push_segment("C", vec![]);
        let mut exec = SymbolicExecutor::new(2);
        let oa = exec.execute(&a);
        let ob = exec.execute(&b);
        assert_eq!(oa, ob);
        // A differently named segment is unrelated.
        let mut c = SymCircuit::new(2);
        c.push_segment("D", vec![]);
        let oc = exec.execute(&c);
        assert_ne!(oa, oc);
    }

    #[test]
    fn param_symbols_are_canonical() {
        assert_eq!(param_symbol(0.5), param_symbol(0.5));
        assert_ne!(param_symbol(0.5), param_symbol(0.25));
    }
}
