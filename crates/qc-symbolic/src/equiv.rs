//! Equivalence checking for symbolic circuits.
//!
//! Two circuits are equivalent when, starting from the same symbolic
//! register, every output wire normalises (under the rewrite-rule library and
//! the congruence closure over any assumed equalities) to the same term.
//! This is the efficient check that replaces the exponential matrix
//! comparison in the Giallar verifier.

use qc_ir::Circuit;
use smtlite::{Context, FaultSite, Fingerprint, TermId, Verdict};

use crate::circuit::SymCircuit;
use crate::exec::SymbolicExecutor;

/// Per-wire equivalence evidence extracted while discharging an
/// output ≡ input goal — the payload of a translation-validation
/// certificate (see `giallar-core::certificate`).
///
/// Each entry records which output wire a logical input wire was compared
/// against and the stable fingerprints of the terms the solver compared, so
/// an independent checker can re-execute the circuits and confirm — wire by
/// wire — that it reaches the same comparison points the issuer did.
///
/// Wires that are syntactically identical (the hash-consed arena gives them
/// the same term id) are fingerprinted as-is: invoking the rewriter there
/// would prove nothing the shared id does not already prove, and full
/// normalisation of deep routed circuits is orders of magnitude more
/// expensive.  Only *differing* wires are normalised, so the fingerprints of
/// a disagreement are the actual normal forms the refutation compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEvidence {
    /// The logical wire of the input circuit.
    pub wire: usize,
    /// The output-circuit wire it was compared against (`wire_map[wire]`,
    /// identity beyond the map).
    pub target: usize,
    /// Fingerprint of the term the input wire was compared at: the shared
    /// term itself when both wires are syntactically identical, its normal
    /// form under the rule library otherwise.
    pub lhs_normal: Fingerprint,
    /// Fingerprint of the term the output wire was compared at (see
    /// [`WireEvidence::lhs_normal`]).
    pub rhs_normal: Fingerprint,
    /// Whether the solver proved the two wires equal.
    pub agreed: bool,
}

/// Fingerprints a term structurally (stable across processes: the
/// fingerprint is determined by the term structure alone, and the
/// sharing-aware [`smtlite::TermArena::fingerprint`] stays linear where
/// rendering a deep routed wire's term would explode).
fn term_fingerprint(context: &Context, term: TermId) -> Fingerprint {
    context.arena().fingerprint(term)
}

/// A reusable equivalence checker over a fixed register size.
///
/// Construction is the expensive part — it builds a solver context and
/// installs (compiles and head-indexes) the full rewrite-rule library — so
/// the verifier creates **one** checker per pass and reuses it across all
/// wires and obligations: circuits narrower than the register are checked
/// over the full register (the untouched wires are trivially equal), wire
/// maps shorter than the register are padded with the identity, and the
/// solver's normal-form memo keeps re-normalising shared sub-terms free.
#[derive(Debug, Clone)]
pub struct EquivalenceChecker {
    executor: SymbolicExecutor,
    num_qubits: usize,
}

impl EquivalenceChecker {
    /// Creates a checker for circuits over at most `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        EquivalenceChecker { executor: SymbolicExecutor::new(num_qubits), num_qubits }
    }

    /// Access to the underlying symbolic executor (for adding assumptions
    /// coming from verified-library specifications).
    pub fn executor_mut(&mut self) -> &mut SymbolicExecutor {
        &mut self.executor
    }

    /// Number of qubits the checker was created for.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Checks strict equivalence: all output wires must match.
    pub fn check(&mut self, lhs: &SymCircuit, rhs: &SymCircuit) -> Verdict {
        let identity: Vec<usize> = (0..self.num_qubits).collect();
        self.check_with_wire_map(lhs, rhs, &identity)
    }

    /// Checks equivalence of a routed circuit against the original, up to the
    /// final qubit permutation tracked by the routing pass: output wire
    /// `perm[l]` of `rhs` must match output wire `l` of `lhs`.  A permutation
    /// shorter than the register is padded with the identity (the remaining
    /// wires are untouched by a narrower circuit).
    pub fn check_with_permutation(
        &mut self,
        lhs: &SymCircuit,
        rhs: &SymCircuit,
        perm: &[usize],
    ) -> Verdict {
        self.check_with_wire_map(lhs, rhs, perm)
    }

    fn check_with_wire_map(
        &mut self,
        lhs: &SymCircuit,
        rhs: &SymCircuit,
        wire_map: &[usize],
    ) -> Verdict {
        // A wire map must cover every qubit the circuits touch (a malformed
        // permutation from a buggy routing pass is an error, not an identity)
        // and fit the register; only the untouched register wires beyond the
        // circuits are identity-padded.
        let circuit_width = lhs.num_qubits().max(rhs.num_qubits());
        if wire_map.len() > self.num_qubits || wire_map.len() < circuit_width {
            return Verdict::refuted_at(
                format!(
                    "wire map covers {} qubits but the circuits span {circuit_width} \
                     and the register has {}",
                    wire_map.len(),
                    self.num_qubits
                ),
                FaultSite::WireMap { entry: None, len: wire_map.len() },
            );
        }
        if let Some(&bad) = wire_map.iter().find(|&&w| w >= self.num_qubits) {
            return Verdict::refuted_at(
                format!(
                    "wire map sends a qubit to wire {bad}, outside the {}-qubit register",
                    self.num_qubits
                ),
                FaultSite::WireMap { entry: Some(bad), len: wire_map.len() },
            );
        }
        let out_lhs = self.executor.execute(lhs);
        let out_rhs = self.executor.execute(rhs);
        for logical in 0..self.num_qubits {
            let a = out_lhs[logical];
            let b = out_rhs[wire_map.get(logical).copied().unwrap_or(logical)];
            match self.executor.context_mut().check_eq(a, b) {
                Verdict::Proved => continue,
                Verdict::Refuted { explanation, .. } => {
                    return Verdict::refuted_at(
                        format!("qubit {logical} differs: {explanation}"),
                        FaultSite::Wire { wire: logical },
                    )
                }
                Verdict::Unknown { reason } => {
                    return Verdict::Unknown {
                        reason: format!("qubit {logical} undecided: {reason}"),
                    }
                }
            }
        }
        Verdict::Proved
    }

    /// Like [`Self::check_with_permutation`], but additionally extracts one
    /// [`WireEvidence`] entry per register wire — the payload of a
    /// translation-validation certificate.
    ///
    /// Unlike the plain check, every wire is visited even after a failure, so
    /// the evidence always covers the full register (an independent checker
    /// can then confirm each wire, not only the ones before the first
    /// mismatch).  The overall verdict reports the first failing wire,
    /// exactly as [`Self::check_with_permutation`] would.  Malformed wire
    /// maps are refuted with empty evidence.
    pub fn check_with_evidence(
        &mut self,
        lhs: &SymCircuit,
        rhs: &SymCircuit,
        wire_map: &[usize],
    ) -> (Verdict, Vec<WireEvidence>) {
        let circuit_width = lhs.num_qubits().max(rhs.num_qubits());
        if wire_map.len() > self.num_qubits || wire_map.len() < circuit_width {
            return (
                Verdict::refuted_at(
                    format!(
                        "wire map covers {} qubits but the circuits span {circuit_width} \
                         and the register has {}",
                        wire_map.len(),
                        self.num_qubits
                    ),
                    FaultSite::WireMap { entry: None, len: wire_map.len() },
                ),
                Vec::new(),
            );
        }
        if let Some(&bad) = wire_map.iter().find(|&&w| w >= self.num_qubits) {
            return (
                Verdict::refuted_at(
                    format!(
                        "wire map sends a qubit to wire {bad}, outside the {}-qubit register",
                        self.num_qubits
                    ),
                    FaultSite::WireMap { entry: Some(bad), len: wire_map.len() },
                ),
                Vec::new(),
            );
        }
        let out_lhs = self.executor.execute(lhs);
        let out_rhs = self.executor.execute(rhs);
        let mut evidence = Vec::with_capacity(self.num_qubits);
        let mut verdict = Verdict::Proved;
        for (logical, &a) in out_lhs.iter().enumerate().take(self.num_qubits) {
            let target = wire_map.get(logical).copied().unwrap_or(logical);
            let b = out_rhs[target];
            // Identical term ids are equal by hash-consing alone; skip the
            // rewriter and fingerprint the shared term directly (normalising
            // every wire of a deep routed circuit can take seconds).
            let (wire_verdict, na, nb) = if a == b {
                (Verdict::Proved, a, b)
            } else {
                let wire_verdict = self.executor.context_mut().check_eq(a, b);
                let na = self.executor.context_mut().normalize(a);
                let nb = self.executor.context_mut().normalize(b);
                (wire_verdict, na, nb)
            };
            evidence.push(WireEvidence {
                wire: logical,
                target,
                lhs_normal: term_fingerprint(self.executor.context(), na),
                rhs_normal: term_fingerprint(self.executor.context(), nb),
                agreed: wire_verdict.is_proved(),
            });
            if verdict.is_proved() {
                verdict = match wire_verdict {
                    Verdict::Proved => Verdict::Proved,
                    Verdict::Refuted { explanation, .. } => Verdict::refuted_at(
                        format!("qubit {logical} differs: {explanation}"),
                        FaultSite::Wire { wire: logical },
                    ),
                    Verdict::Unknown { reason } => {
                        Verdict::Unknown { reason: format!("qubit {logical} undecided: {reason}") }
                    }
                };
            }
        }
        (verdict, evidence)
    }

    /// Convenience: assumes that two wires are equal (used to instantiate
    /// verified-library specifications during a proof).
    pub fn assume_wire_eq(&mut self, a: TermId, b: TermId) {
        self.executor.context_mut().assume_eq(a, b);
    }
}

/// Checks strict equivalence of two symbolic circuits with a fresh checker.
pub fn check_equivalence(lhs: &SymCircuit, rhs: &SymCircuit) -> Verdict {
    let n = lhs.num_qubits().max(rhs.num_qubits());
    EquivalenceChecker::new(n).check(lhs, rhs)
}

/// Checks equivalence up to a final qubit permutation (the `RoutingPass`
/// proof obligation).
pub fn check_equivalence_with_permutation(
    lhs: &SymCircuit,
    rhs: &SymCircuit,
    perm: &[usize],
) -> Verdict {
    let n = lhs.num_qubits().max(rhs.num_qubits());
    EquivalenceChecker::new(n).check_with_permutation(lhs, rhs, perm)
}

/// Checks equivalence after stripping trailing measurements from both sides
/// (the obligation for `RemoveFinalMeasurements`-style passes).
pub fn check_equivalence_up_to_final_measurements(lhs: &Circuit, rhs: &Circuit) -> Verdict {
    let a = SymCircuit::from_circuit(lhs).without_final_measurements();
    let b = SymCircuit::from_circuit(rhs).without_final_measurements();
    check_equivalence(&a, &b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_ir::{Gate, GateKind};

    #[test]
    fn cx_cancellation_goal() {
        let mut lhs = Circuit::new(2);
        lhs.cx(0, 1).cx(0, 1);
        let rhs = Circuit::new(2);
        assert!(check_equivalence(
            &SymCircuit::from_circuit(&lhs),
            &SymCircuit::from_circuit(&rhs)
        )
        .is_proved());
    }

    #[test]
    fn cx_cancellation_with_intervening_segment() {
        // The G2 goal from §6: CX ; C1 ; CX ; C2 ≡ C1 ; C2 where C1 does not
        // touch the CX qubits.
        let cx = Gate::new(GateKind::CX, vec![0, 1]);
        let mut lhs = SymCircuit::new(4);
        lhs.push_gate(cx.clone());
        lhs.push_segment("C1", vec![0, 1]);
        lhs.push_gate(cx.clone());
        lhs.push_segment("C2", vec![]);
        let mut rhs = SymCircuit::new(4);
        rhs.push_segment("C1", vec![0, 1]);
        rhs.push_segment("C2", vec![]);
        assert!(check_equivalence(&lhs, &rhs).is_proved());
    }

    #[test]
    fn non_equivalent_circuits_are_refuted() {
        let mut lhs = Circuit::new(2);
        lhs.cx(0, 1);
        let rhs = Circuit::new(2);
        let verdict =
            check_equivalence(&SymCircuit::from_circuit(&lhs), &SymCircuit::from_circuit(&rhs));
        assert!(verdict.is_refuted());
    }

    #[test]
    fn commutation_enables_distant_cancellation() {
        // Z(control) between two CNOTs: CX; Z(0); CX ≡ Z(0).
        let mut lhs = Circuit::new(2);
        lhs.cx(0, 1).z(0).cx(0, 1);
        let mut rhs = Circuit::new(2);
        rhs.z(0);
        assert!(check_equivalence(
            &SymCircuit::from_circuit(&lhs),
            &SymCircuit::from_circuit(&rhs)
        )
        .is_proved());
        // X on the target likewise commutes through.
        let mut lhs = Circuit::new(2);
        lhs.cx(0, 1).x(1).cx(0, 1);
        let mut rhs = Circuit::new(2);
        rhs.x(1);
        assert!(check_equivalence(
            &SymCircuit::from_circuit(&lhs),
            &SymCircuit::from_circuit(&rhs)
        )
        .is_proved());
        // But X on the *control* does not commute with CX; the (wrong) claim
        // CX; X(0); CX ≡ X(0) must be refuted.
        let mut lhs = Circuit::new(2);
        lhs.cx(0, 1).x(0).cx(0, 1);
        let mut rhs = Circuit::new(2);
        rhs.x(0);
        assert!(!check_equivalence(
            &SymCircuit::from_circuit(&lhs),
            &SymCircuit::from_circuit(&rhs)
        )
        .is_proved());
    }

    #[test]
    fn swap_rules_discharge_routing_goals() {
        // cx(0,1); swap(1,2); cx(0,1)  ≡  cx(0,1); cx(0,2) up to the final
        // permutation that maps logical 1 to wire 2 and logical 2 to wire 1.
        let mut routed = Circuit::new(3);
        routed.cx(0, 1).swap(1, 2).cx(0, 1);
        let mut original = Circuit::new(3);
        original.cx(0, 1).cx(0, 2);
        let verdict = check_equivalence_with_permutation(
            &SymCircuit::from_circuit(&original),
            &SymCircuit::from_circuit(&routed),
            &[0, 2, 1],
        );
        assert!(verdict.is_proved(), "{verdict:?}");
        // With the identity permutation the circuits differ.
        assert!(!check_equivalence(
            &SymCircuit::from_circuit(&original),
            &SymCircuit::from_circuit(&routed)
        )
        .is_proved());
    }

    #[test]
    fn malformed_wire_maps_are_rejected_and_short_registers_pad() {
        // A permutation shorter than the circuits is a malformed routing
        // artifact and must be refuted, not identity-padded.
        let mut routed = Circuit::new(3);
        routed.swap(1, 2).cx(0, 1);
        let mut original = Circuit::new(3);
        original.cx(0, 2);
        let lhs = SymCircuit::from_circuit(&original);
        let rhs = SymCircuit::from_circuit(&routed);
        let mut checker = EquivalenceChecker::new(3);
        assert!(checker.check_with_permutation(&lhs, &rhs, &[0, 2]).is_refuted());
        assert!(checker.check_with_permutation(&lhs, &rhs, &[0, 2, 1, 3]).is_refuted());
        // Out-of-range targets are refuted with an explanation, not a panic.
        assert!(checker.check_with_permutation(&lhs, &rhs, &[0, 2, 3]).is_refuted());
        assert!(checker.check_with_permutation(&lhs, &rhs, &[0, 2, 1]).is_proved());
        // A checker over a wider register pads only the untouched wires.
        let mut wide = EquivalenceChecker::new(5);
        assert!(wide.check_with_permutation(&lhs, &rhs, &[0, 2, 1]).is_proved());
        assert!(wide.check_with_permutation(&lhs, &rhs, &[0, 2]).is_refuted());
    }

    #[test]
    fn evidence_covers_every_wire_and_matches_the_plain_verdict() {
        let mut routed = Circuit::new(3);
        routed.cx(0, 1).swap(1, 2).cx(0, 1);
        let mut original = Circuit::new(3);
        original.cx(0, 1).cx(0, 2);
        let lhs = SymCircuit::from_circuit(&original);
        let rhs = SymCircuit::from_circuit(&routed);
        let mut checker = EquivalenceChecker::new(3);
        let (verdict, evidence) = checker.check_with_evidence(&lhs, &rhs, &[0, 2, 1]);
        assert!(verdict.is_proved(), "{verdict:?}");
        assert_eq!(evidence.len(), 3);
        assert!(evidence.iter().all(|e| e.agreed && e.lhs_normal == e.rhs_normal));
        assert_eq!(evidence[1].target, 2);
        // A wrong map is refuted, but the evidence still covers all wires.
        let mut checker = EquivalenceChecker::new(3);
        let (verdict, evidence) = checker.check_with_evidence(&lhs, &rhs, &[0, 1, 2]);
        assert!(verdict.is_refuted());
        assert_eq!(evidence.len(), 3);
        assert!(evidence.iter().any(|e| !e.agreed && e.lhs_normal != e.rhs_normal));
        // Malformed maps are refuted up front with empty evidence.
        let (verdict, evidence) = checker.check_with_evidence(&lhs, &rhs, &[0, 2]);
        assert!(verdict.is_refuted());
        assert!(evidence.is_empty());
    }

    #[test]
    fn direction_reversal_is_equivalent() {
        let mut flipped = Circuit::new(2);
        flipped.h(0).h(1).cx(1, 0).h(0).h(1);
        let mut original = Circuit::new(2);
        original.cx(0, 1);
        assert!(check_equivalence(
            &SymCircuit::from_circuit(&original),
            &SymCircuit::from_circuit(&flipped)
        )
        .is_proved());
    }

    #[test]
    fn conditioned_gates_block_merging() {
        // The §7.1 bug shape: a conditioned u3 is not interchangeable with an
        // unconditioned one.
        let mut lhs = Circuit::with_clbits(1, 1);
        lhs.push(Gate::new(GateKind::U3(0.3, 0.4, 0.5), vec![0]).with_classical_condition(0, true))
            .unwrap();
        let mut rhs = Circuit::new(1);
        rhs.u3(0.3, 0.4, 0.5, 0);
        assert!(check_equivalence(
            &SymCircuit::from_circuit(&lhs),
            &SymCircuit::from_circuit(&rhs)
        )
        .is_refuted());
    }

    #[test]
    fn final_measurements_are_ignored_when_requested() {
        let mut lhs = Circuit::with_clbits(2, 2);
        lhs.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let mut rhs = Circuit::with_clbits(2, 2);
        rhs.h(0).cx(0, 1);
        assert!(check_equivalence_up_to_final_measurements(&lhs, &rhs).is_proved());
        // Strict equivalence still sees the measurements.
        assert!(check_equivalence(
            &SymCircuit::from_circuit(&lhs),
            &SymCircuit::from_circuit(&rhs)
        )
        .is_refuted());
    }

    #[test]
    fn barriers_are_transparent() {
        let mut lhs = Circuit::new(2);
        lhs.h(0).barrier_all().cx(0, 1);
        let mut rhs = Circuit::new(2);
        rhs.h(0).cx(0, 1);
        assert!(check_equivalence(
            &SymCircuit::from_circuit(&lhs),
            &SymCircuit::from_circuit(&rhs)
        )
        .is_proved());
    }
}
