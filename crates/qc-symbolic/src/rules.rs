//! The library of circuit rewrite rules (Figure 7 of the paper).
//!
//! Every rule is derived from a small *circuit identity* — e.g. "two adjacent
//! CNOTs on the same qubits are the identity", "a Z rotation on the control
//! commutes with CNOT", "conjugating a CNOT with Hadamards reverses its
//! direction".  The identity contributes one directed rewrite rule per output
//! wire, so that rewriting every wire of the left-hand fragment yields exactly
//! the wires of the right-hand fragment.
//!
//! The identities themselves are exported through [`rule_identities`] and are
//! checked against the dense matrix semantics by [`crate::soundness`]; this
//! replaces the paper's once-and-for-all Coq proofs.

use std::sync::OnceLock;

use qc_ir::{Circuit, GateKind};
use serde::{Deserialize, Serialize};
use smtlite::{Fingerprint, FingerprintBuilder, Pattern, RewriteRule};

/// Version of the rewrite-rule library format.  Bump on any semantic change
/// that the structural fingerprint of [`rule_library_fingerprint`] cannot
/// see (e.g. a change to how rules are *applied* rather than which rules
/// exist); the incremental verification cache stores the combined
/// fingerprint and re-discharges every pass when it moves.
pub const RULE_LIBRARY_VERSION: u32 = 1;

/// A stable content fingerprint of the full rewrite-rule library: the
/// version constant above plus the class, backing identity, and canonical
/// `lhs -> rhs` form of every rule, in library order.
///
/// Cached pass verdicts are only valid for the rule library they were
/// discharged under, so this fingerprint is folded into every pass
/// fingerprint by the incremental verification cache in `giallar-core`.
pub fn rule_library_fingerprint() -> Fingerprint {
    static FINGERPRINT: OnceLock<Fingerprint> = OnceLock::new();
    *FINGERPRINT.get_or_init(|| {
        let mut builder = FingerprintBuilder::new();
        builder.write_str("giallar-rule-library");
        builder.write_u64(u64::from(RULE_LIBRARY_VERSION));
        for rule in circuit_rewrite_rules_static() {
            builder.write_str(&format!("{:?}", rule.class));
            builder.write_str(&rule.identity);
            builder.write_str(&rule.rule.canonical_form());
        }
        builder.finish()
    })
}

/// The paper's classification of rewrite rules (§8, "Reusability").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RuleClass {
    /// Adjacent self-inverse (or mutually inverse) gates cancel.
    Cancellation,
    /// Gates that commute may be reordered.
    Commutation,
    /// SWAP gates exchange their wires.
    Swap,
    /// CNOT direction reversal via Hadamard conjugation.
    Direction,
}

/// A rewrite rule together with its class and the name of the circuit
/// identity it was derived from.
#[derive(Debug, Clone)]
pub struct ClassifiedRule {
    /// Which family the rule belongs to.
    pub class: RuleClass,
    /// Name of the underlying circuit identity (see [`rule_identities`]).
    pub identity: String,
    /// The directed rewrite rule itself.
    pub rule: RewriteRule,
}

/// A circuit identity backing one or more rewrite rules.
#[derive(Debug, Clone)]
pub struct RuleIdentity {
    /// Identity name, referenced by [`ClassifiedRule::identity`].
    pub name: String,
    /// Left-hand circuit.
    pub lhs: Circuit,
    /// Right-hand circuit.
    pub rhs: Circuit,
    /// When `Some(perm)`, the identity holds up to this output permutation
    /// (only the SWAP-elimination identity uses this).
    pub permutation: Option<Vec<usize>>,
}

fn v(name: &str) -> Pattern {
    Pattern::var(name)
}

fn g1(name: &str, arg: Pattern) -> Pattern {
    Pattern::app(name, vec![arg])
}

fn g1p(name: &str, param: &str, arg: Pattern) -> Pattern {
    Pattern::app(name, vec![Pattern::var(param), arg])
}

fn g2(name: &str, k: usize, a: Pattern, b: Pattern) -> Pattern {
    Pattern::app(&format!("{name}_{k}"), vec![a, b])
}

fn g3(name: &str, k: usize, a: Pattern, b: Pattern, c: Pattern) -> Pattern {
    Pattern::app(&format!("{name}_{k}"), vec![a, b, c])
}

/// Diagonal 1-qubit gates without parameters (commute with a CNOT control
/// and with either CZ wire).
const DIAG_1Q: &[&str] = &["z", "s", "sdg", "t", "tdg"];
/// Diagonal 1-qubit gates with one parameter.
const DIAG_1Q_PARAM: &[&str] = &["rz", "u1", "p"];
/// X-axis 1-qubit gates without parameters (commute with a CNOT target).
const XAXIS_1Q: &[&str] = &["x", "sx", "sxdg"];
/// X-axis 1-qubit gates with one parameter.
const XAXIS_1Q_PARAM: &[&str] = &["rx"];
/// Self-inverse 1-qubit gates.
const SELF_INV_1Q: &[&str] = &["x", "y", "z", "h"];
/// Mutually inverse 1-qubit gate pairs.
const INV_PAIRS_1Q: &[(&str, &str)] = &[("s", "sdg"), ("t", "tdg"), ("sx", "sxdg")];
/// Self-inverse 2-qubit gates (excluding SWAP, which has its own rules).
const SELF_INV_2Q: &[&str] = &["cx", "cy", "cz", "ch"];

/// The full rewrite-rule library, built once per process.
///
/// The library is immutable and every solver context needs it, so the hot
/// verification path ([`crate::SymbolicExecutor::new`], one context per
/// pass) reads this static slice and clones only the individual
/// [`RewriteRule`]s it installs, instead of re-deriving ~90 patterns from
/// the gate tables on every context construction.
pub fn circuit_rewrite_rules_static() -> &'static [ClassifiedRule] {
    static LIBRARY: OnceLock<Vec<ClassifiedRule>> = OnceLock::new();
    LIBRARY.get_or_init(build_circuit_rewrite_rules)
}

/// Builds the full rewrite-rule library (an owned copy of
/// [`circuit_rewrite_rules_static`]).
pub fn circuit_rewrite_rules() -> Vec<ClassifiedRule> {
    circuit_rewrite_rules_static().to_vec()
}

/// Derives the rule library from the gate tables.
fn build_circuit_rewrite_rules() -> Vec<ClassifiedRule> {
    let mut rules = Vec::new();
    let push = |rules: &mut Vec<ClassifiedRule>, class, identity: &str, rule| {
        rules.push(ClassifiedRule { class, identity: identity.to_string(), rule });
    };

    // --- cancellation: 1-qubit -------------------------------------------
    for &g in SELF_INV_1Q {
        let identity = format!("cancel_{g}");
        push(
            &mut rules,
            RuleClass::Cancellation,
            &identity,
            RewriteRule::new(&identity, g1(g, g1(g, v("q"))), v("q")),
        );
    }
    push(
        &mut rules,
        RuleClass::Cancellation,
        "cancel_id",
        RewriteRule::new("cancel_id", g1("id", v("q")), v("q")),
    );
    for &(a, b) in INV_PAIRS_1Q {
        let id_ab = format!("cancel_{a}_{b}");
        push(
            &mut rules,
            RuleClass::Cancellation,
            &id_ab,
            RewriteRule::new(&id_ab, g1(a, g1(b, v("q"))), v("q")),
        );
        let id_ba = format!("cancel_{b}_{a}");
        push(
            &mut rules,
            RuleClass::Cancellation,
            &id_ba,
            RewriteRule::new(&id_ba, g1(b, g1(a, v("q"))), v("q")),
        );
    }

    // --- cancellation: 2-qubit -------------------------------------------
    for &g in SELF_INV_2Q {
        let identity = format!("cancel_{g}");
        for k in 1..=2 {
            let lhs = g2(g, k, g2(g, 1, v("a"), v("b")), g2(g, 2, v("a"), v("b")));
            let rhs = if k == 1 { v("a") } else { v("b") };
            push(
                &mut rules,
                RuleClass::Cancellation,
                &identity,
                RewriteRule::new(&format!("{identity}_{k}"), lhs, rhs),
            );
        }
    }
    // Toffoli cancellation.
    for k in 1..=3 {
        let lhs = g3(
            "ccx",
            k,
            g3("ccx", 1, v("a"), v("b"), v("c")),
            g3("ccx", 2, v("a"), v("b"), v("c")),
            g3("ccx", 3, v("a"), v("b"), v("c")),
        );
        let rhs = [v("a"), v("b"), v("c")][k - 1].clone();
        push(
            &mut rules,
            RuleClass::Cancellation,
            "cancel_ccx",
            RewriteRule::new(&format!("cancel_ccx_{k}"), lhs, rhs),
        );
    }

    // --- swap rules --------------------------------------------------------
    push(
        &mut rules,
        RuleClass::Swap,
        "swap_wires",
        RewriteRule::new("swap_1", g2("swap", 1, v("a"), v("b")), v("b")),
    );
    push(
        &mut rules,
        RuleClass::Swap,
        "swap_wires",
        RewriteRule::new("swap_2", g2("swap", 2, v("a"), v("b")), v("a")),
    );

    // --- commutation: diagonal gate on the CNOT control ---------------------
    for &d in DIAG_1Q {
        let identity = format!("commute_{d}_cx_control");
        push(
            &mut rules,
            RuleClass::Commutation,
            &identity,
            RewriteRule::new(
                &format!("{identity}_ctl"),
                g2("cx", 1, g1(d, v("a")), v("b")),
                g1(d, g2("cx", 1, v("a"), v("b"))),
            ),
        );
        push(
            &mut rules,
            RuleClass::Commutation,
            &identity,
            RewriteRule::new(
                &format!("{identity}_tgt"),
                g2("cx", 2, g1(d, v("a")), v("b")),
                g2("cx", 2, v("a"), v("b")),
            ),
        );
    }
    for &d in DIAG_1Q_PARAM {
        let identity = format!("commute_{d}_cx_control");
        push(
            &mut rules,
            RuleClass::Commutation,
            &identity,
            RewriteRule::new(
                &format!("{identity}_ctl"),
                g2("cx", 1, g1p(d, "p", v("a")), v("b")),
                g1p(d, "p", g2("cx", 1, v("a"), v("b"))),
            ),
        );
        push(
            &mut rules,
            RuleClass::Commutation,
            &identity,
            RewriteRule::new(
                &format!("{identity}_tgt"),
                g2("cx", 2, g1p(d, "p", v("a")), v("b")),
                g2("cx", 2, v("a"), v("b")),
            ),
        );
    }

    // --- commutation: X-axis gate on the CNOT target ------------------------
    for &x in XAXIS_1Q {
        let identity = format!("commute_{x}_cx_target");
        push(
            &mut rules,
            RuleClass::Commutation,
            &identity,
            RewriteRule::new(
                &format!("{identity}_tgt"),
                g2("cx", 2, v("a"), g1(x, v("b"))),
                g1(x, g2("cx", 2, v("a"), v("b"))),
            ),
        );
        push(
            &mut rules,
            RuleClass::Commutation,
            &identity,
            RewriteRule::new(
                &format!("{identity}_ctl"),
                g2("cx", 1, v("a"), g1(x, v("b"))),
                g2("cx", 1, v("a"), v("b")),
            ),
        );
    }
    for &x in XAXIS_1Q_PARAM {
        let identity = format!("commute_{x}_cx_target");
        push(
            &mut rules,
            RuleClass::Commutation,
            &identity,
            RewriteRule::new(
                &format!("{identity}_tgt"),
                g2("cx", 2, v("a"), g1p(x, "p", v("b"))),
                g1p(x, "p", g2("cx", 2, v("a"), v("b"))),
            ),
        );
        push(
            &mut rules,
            RuleClass::Commutation,
            &identity,
            RewriteRule::new(
                &format!("{identity}_ctl"),
                g2("cx", 1, v("a"), g1p(x, "p", v("b"))),
                g2("cx", 1, v("a"), v("b")),
            ),
        );
    }

    // --- commutation: diagonal gates on either CZ wire ----------------------
    for &d in &["z", "s", "t"] {
        for side in 1..=2 {
            let identity = format!("commute_{d}_cz_{side}");
            let (in1, in2) =
                if side == 1 { (g1(d, v("a")), v("b")) } else { (v("a"), g1(d, v("b"))) };
            for k in 1..=2 {
                let lhs = g2("cz", k, in1.clone(), in2.clone());
                let rhs = if k == side {
                    g1(d, g2("cz", k, v("a"), v("b")))
                } else {
                    g2("cz", k, v("a"), v("b"))
                };
                push(
                    &mut rules,
                    RuleClass::Commutation,
                    &identity,
                    RewriteRule::new(&format!("{identity}_{k}"), lhs, rhs),
                );
            }
        }
    }
    for &d in &["u1", "rz"] {
        for side in 1..=2 {
            let identity = format!("commute_{d}_cz_{side}");
            let (in1, in2) = if side == 1 {
                (g1p(d, "p", v("a")), v("b"))
            } else {
                (v("a"), g1p(d, "p", v("b")))
            };
            for k in 1..=2 {
                let lhs = g2("cz", k, in1.clone(), in2.clone());
                let rhs = if k == side {
                    g1p(d, "p", g2("cz", k, v("a"), v("b")))
                } else {
                    g2("cz", k, v("a"), v("b"))
                };
                push(
                    &mut rules,
                    RuleClass::Commutation,
                    &identity,
                    RewriteRule::new(&format!("{identity}_{k}"), lhs, rhs),
                );
            }
        }
    }

    // --- CNOT direction reversal --------------------------------------------
    // h⊗h ; cx(b,a) ; h⊗h  ≡  cx(a,b)
    push(
        &mut rules,
        RuleClass::Direction,
        "cx_direction",
        RewriteRule::new(
            "cx_direction_ctl",
            g1("h", g2("cx", 2, g1("h", v("b")), g1("h", v("a")))),
            g2("cx", 1, v("a"), v("b")),
        ),
    );
    push(
        &mut rules,
        RuleClass::Direction,
        "cx_direction",
        RewriteRule::new(
            "cx_direction_tgt",
            g1("h", g2("cx", 1, g1("h", v("b")), g1("h", v("a")))),
            g2("cx", 2, v("a"), v("b")),
        ),
    );

    rules
}

/// The circuit identities backing the rewrite rules, used by the soundness
/// checker (`crate::soundness`) to validate every rule against the dense
/// matrix semantics.
pub fn rule_identities() -> Vec<RuleIdentity> {
    let mut identities: Vec<RuleIdentity> = Vec::new();
    fn add(identities: &mut Vec<RuleIdentity>, name: &str, lhs: Circuit, rhs: Circuit) {
        identities.push(RuleIdentity { name: name.to_string(), lhs, rhs, permutation: None });
    }

    let kind_of = |name: &str| -> GateKind {
        GateKind::from_name(name, &[]).expect("known unparameterised gate")
    };
    let kind_of_param = |name: &str| -> GateKind {
        GateKind::from_name(name, &[0.37]).expect("known parameterised gate")
    };

    // 1-qubit cancellations.
    for &g in SELF_INV_1Q {
        let mut lhs = Circuit::new(1);
        lhs.add(kind_of(g), &[0]).add(kind_of(g), &[0]);
        add(&mut identities, &format!("cancel_{g}"), lhs, Circuit::new(1));
    }
    {
        let mut lhs = Circuit::new(1);
        lhs.add(GateKind::I, &[0]);
        add(&mut identities, "cancel_id", lhs, Circuit::new(1));
    }
    for &(a, b) in INV_PAIRS_1Q {
        // Rule `a(b(q)) -> q` corresponds to applying b first, then a.
        let mut lhs = Circuit::new(1);
        lhs.add(kind_of(b), &[0]).add(kind_of(a), &[0]);
        add(&mut identities, &format!("cancel_{a}_{b}"), lhs, Circuit::new(1));
        let mut lhs = Circuit::new(1);
        lhs.add(kind_of(a), &[0]).add(kind_of(b), &[0]);
        add(&mut identities, &format!("cancel_{b}_{a}"), lhs, Circuit::new(1));
    }

    // 2-qubit cancellations.
    for &g in SELF_INV_2Q {
        let mut lhs = Circuit::new(2);
        lhs.add(kind_of(g), &[0, 1]).add(kind_of(g), &[0, 1]);
        add(&mut identities, &format!("cancel_{g}"), lhs, Circuit::new(2));
    }
    {
        let mut lhs = Circuit::new(3);
        lhs.ccx(0, 1, 2).ccx(0, 1, 2);
        add(&mut identities, "cancel_ccx", lhs, Circuit::new(3));
    }

    // SWAP wire exchange: SWAP ≡ identity up to the permutation (0 1).
    {
        let mut lhs = Circuit::new(2);
        lhs.swap(0, 1);
        identities.push(RuleIdentity {
            name: "swap_wires".to_string(),
            lhs,
            rhs: Circuit::new(2),
            permutation: Some(vec![1, 0]),
        });
    }

    // Commutation identities with CX.
    for &d in DIAG_1Q {
        let mut lhs = Circuit::new(2);
        lhs.add(kind_of(d), &[0]).cx(0, 1);
        let mut rhs = Circuit::new(2);
        rhs.cx(0, 1).add(kind_of(d), &[0]);
        add(&mut identities, &format!("commute_{d}_cx_control"), lhs, rhs);
    }
    for &d in DIAG_1Q_PARAM {
        let mut lhs = Circuit::new(2);
        lhs.add(kind_of_param(d), &[0]).cx(0, 1);
        let mut rhs = Circuit::new(2);
        rhs.cx(0, 1).add(kind_of_param(d), &[0]);
        add(&mut identities, &format!("commute_{d}_cx_control"), lhs, rhs);
    }
    for &x in XAXIS_1Q {
        let mut lhs = Circuit::new(2);
        lhs.add(kind_of(x), &[1]).cx(0, 1);
        let mut rhs = Circuit::new(2);
        rhs.cx(0, 1).add(kind_of(x), &[1]);
        add(&mut identities, &format!("commute_{x}_cx_target"), lhs, rhs);
    }
    for &x in XAXIS_1Q_PARAM {
        let mut lhs = Circuit::new(2);
        lhs.add(kind_of_param(x), &[1]).cx(0, 1);
        let mut rhs = Circuit::new(2);
        rhs.cx(0, 1).add(kind_of_param(x), &[1]);
        add(&mut identities, &format!("commute_{x}_cx_target"), lhs, rhs);
    }

    // Commutation identities with CZ (either side).
    for &d in &["z", "s", "t"] {
        for side in 0..2usize {
            let mut lhs = Circuit::new(2);
            lhs.add(kind_of(d), &[side]).cz(0, 1);
            let mut rhs = Circuit::new(2);
            rhs.cz(0, 1).add(kind_of(d), &[side]);
            add(&mut identities, &format!("commute_{d}_cz_{}", side + 1), lhs, rhs);
        }
    }
    for &d in &["u1", "rz"] {
        for side in 0..2usize {
            let mut lhs = Circuit::new(2);
            lhs.add(kind_of_param(d), &[side]).cz(0, 1);
            let mut rhs = Circuit::new(2);
            rhs.cz(0, 1).add(kind_of_param(d), &[side]);
            add(&mut identities, &format!("commute_{d}_cz_{}", side + 1), lhs, rhs);
        }
    }

    // CNOT direction reversal.
    {
        let mut lhs = Circuit::new(2);
        lhs.h(0).h(1).cx(1, 0).h(0).h(1);
        let mut rhs = Circuit::new(2);
        rhs.cx(0, 1);
        add(&mut identities, "cx_direction", lhs, rhs);
    }

    identities
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn every_rule_references_an_identity() {
        let identity_names: BTreeSet<String> =
            rule_identities().into_iter().map(|i| i.name).collect();
        for rule in circuit_rewrite_rules() {
            assert!(
                identity_names.contains(&rule.identity),
                "rule `{}` references unknown identity `{}`",
                rule.rule.name,
                rule.identity
            );
        }
    }

    #[test]
    fn rule_names_are_unique() {
        let rules = circuit_rewrite_rules();
        let names: BTreeSet<&str> = rules.iter().map(|r| r.rule.name.as_str()).collect();
        assert_eq!(names.len(), rules.len());
    }

    #[test]
    fn rule_library_fingerprint_is_deterministic_and_rule_sensitive() {
        assert_eq!(rule_library_fingerprint(), rule_library_fingerprint());
        // Recomputing the same fold with one rule dropped must change the
        // digest: the cache relies on library edits being visible.
        let mut truncated = FingerprintBuilder::new();
        truncated.write_str("giallar-rule-library");
        truncated.write_u64(u64::from(RULE_LIBRARY_VERSION));
        for rule in circuit_rewrite_rules().iter().skip(1) {
            truncated.write_str(&format!("{:?}", rule.class));
            truncated.write_str(&rule.identity);
            truncated.write_str(&rule.rule.canonical_form());
        }
        assert_ne!(truncated.finish(), rule_library_fingerprint());
    }

    #[test]
    fn library_covers_the_paper_rule_classes() {
        let rules = circuit_rewrite_rules();
        let classes: BTreeSet<RuleClass> = rules.iter().map(|r| r.class).collect();
        assert!(classes.contains(&RuleClass::Cancellation));
        assert!(classes.contains(&RuleClass::Commutation));
        assert!(classes.contains(&RuleClass::Swap));
        assert!(classes.contains(&RuleClass::Direction));
        // The paper ships ~20 rules; our finer-grained library is larger.
        assert!(rules.len() >= 20, "expected at least 20 rules, got {}", rules.len());
    }
}
