//! `giallar check-cert` on broken certificate files: every failure mode
//! must produce a clean one-line error naming the offending file — never a
//! panic or a raw parser backtrace.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn giallar() -> Command {
    Command::new(env!("CARGO_BIN_EXE_giallar"))
}

fn temp_file(name: &str, contents: &[u8]) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("giallar-check-cert-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp certificate");
    path
}

/// Asserts the common contract: exit code 1 (a failure, not a usage error
/// or crash), an error line naming the file, and no panic output.
fn assert_clean_failure(output: &Output, path: &Path) {
    let stderr = String::from_utf8_lossy(&output.stderr);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(output.status.code(), Some(1), "stderr: {stderr}");
    assert!(stderr.contains(path.to_str().unwrap()), "error does not name the file: {stderr}");
    // One line of diagnostics, not a backtrace dump.
    assert_eq!(stderr.trim_end().lines().count(), 1, "multi-line error: {stderr}");
    for text in [&stderr, &stdout] {
        assert!(!text.contains("panicked"), "panic leaked: {text}");
        assert!(!text.contains("RUST_BACKTRACE"), "backtrace hint leaked: {text}");
    }
}

#[test]
fn empty_certificate_file_reports_a_clean_error() {
    let path = temp_file("empty.json", b"");
    let output = giallar().args(["check-cert", path.to_str().unwrap()]).output().unwrap();
    assert_clean_failure(&output, &path);
    std::fs::remove_file(&path).ok();
}

#[test]
fn non_json_certificate_file_reports_a_clean_error() {
    let path = temp_file("garbage.json", b"\xff\xfenot json at all {{{");
    let output = giallar().args(["check-cert", path.to_str().unwrap()]).output().unwrap();
    assert_clean_failure(&output, &path);
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_certificate_file_reports_a_clean_error() {
    // Well-formed prefix of a real certificate, cut mid-object.
    let path = temp_file(
        "truncated.json",
        br#"{"schema": "giallar-cert/v1", "circuit": "bell", "device": "line:6", "pipe"#,
    );
    let output = giallar().args(["check-cert", path.to_str().unwrap()]).output().unwrap();
    assert_clean_failure(&output, &path);
    std::fs::remove_file(&path).ok();
}

#[test]
fn valid_json_that_is_not_a_certificate_reports_a_clean_error() {
    let path = temp_file("shape.json", br#"{"schema": "giallar-cert/v1", "surprise": 42}"#);
    let output = giallar().args(["check-cert", path.to_str().unwrap()]).output().unwrap();
    assert_clean_failure(&output, &path);
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_certificate_file_reports_a_clean_error() {
    let path = std::env::temp_dir().join("giallar-check-cert-definitely-missing.json");
    std::fs::remove_file(&path).ok();
    let output = giallar().args(["check-cert", path.to_str().unwrap()]).output().unwrap();
    assert_clean_failure(&output, &path);
}
