//! `giallar verify --jobs` must never change what the verifier says: the
//! flag bounds the rayon pool for obligation generation *and* the batched
//! work-stealing group discharge, and the sequential registry-order fold
//! guarantees the report is a pure function of the pass list and backend.
//! These tests pin that contract at the process boundary.

use std::process::Command;

fn verify_stdout(extra: &[&str]) -> (Vec<u8>, Option<i32>) {
    let output = Command::new(env!("CARGO_BIN_EXE_giallar"))
        .arg("verify")
        .arg("--deterministic")
        .args(extra)
        .output()
        .expect("run giallar verify");
    (output.stdout, output.status.code())
}

#[test]
fn jobs_one_report_is_byte_identical_to_the_default_pool() {
    let (default_pool, default_code) = verify_stdout(&[]);
    let (sequential, sequential_code) = verify_stdout(&["--jobs", "1"]);
    assert_eq!(default_code, Some(0));
    assert_eq!(sequential_code, Some(0));
    assert!(!default_pool.is_empty(), "verify produced no report");
    assert_eq!(
        default_pool, sequential,
        "--jobs 1 must produce a byte-identical deterministic report"
    );
}

#[test]
fn jobs_one_matches_a_wide_pool_under_every_backend() {
    for backend in ["default", "reference", "saturate"] {
        let (wide, wide_code) = verify_stdout(&["--backend", backend, "--jobs", "8"]);
        let (narrow, narrow_code) = verify_stdout(&["--backend", backend, "--jobs", "1"]);
        assert_eq!(wide_code, Some(0), "backend {backend}");
        assert_eq!(narrow_code, Some(0), "backend {backend}");
        assert_eq!(wide, narrow, "scheduling leaked into the {backend} report");
    }
}
