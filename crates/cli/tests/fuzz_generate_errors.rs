//! `giallar fuzz --generate` on generator-rejected inputs: every invalid
//! configuration must exit 1 with a clean one-line error naming the
//! offending flag — never a panic, a usage dump, or a silent success.

use std::process::{Command, Output};

fn giallar() -> Command {
    Command::new(env!("CARGO_BIN_EXE_giallar"))
}

/// Asserts the common contract: exit code 1 (a generator rejection, not a
/// usage error or crash), one error line naming the flag, no panic output.
fn assert_clean_rejection(output: &Output, flag: &str) {
    let stderr = String::from_utf8_lossy(&output.stderr);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(output.status.code(), Some(1), "stderr: {stderr}");
    assert!(stderr.contains(flag), "error does not name {flag}: {stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "multi-line error: {stderr}");
    for text in [&stderr, &stdout] {
        assert!(!text.contains("panicked"), "panic leaked: {text}");
        assert!(!text.contains("RUST_BACKTRACE"), "backtrace hint leaked: {text}");
    }
}

#[test]
fn zero_width_is_rejected_naming_the_flag() {
    let output = giallar().args(["fuzz", "--generate", "--width", "0"]).output().unwrap();
    assert_clean_rejection(&output, "--width");
}

#[test]
fn width_beyond_the_device_is_rejected_naming_the_flag() {
    let output = giallar().args(["fuzz", "--generate", "--width", "7"]).output().unwrap();
    assert_clean_rejection(&output, "--width");
}

#[test]
fn zero_circuits_is_rejected_naming_the_flag() {
    let output = giallar().args(["fuzz", "--generate", "--circuits", "0"]).output().unwrap();
    assert_clean_rejection(&output, "--circuits");
}

#[test]
fn zero_depth_is_rejected_naming_the_flag() {
    let output = giallar().args(["fuzz", "--generate", "--depth", "0"]).output().unwrap();
    assert_clean_rejection(&output, "--depth");
}

#[test]
fn oversized_depth_is_rejected_naming_the_flag() {
    let output = giallar().args(["fuzz", "--generate", "--depth", "513"]).output().unwrap();
    assert_clean_rejection(&output, "--depth");
}

#[test]
fn empty_alphabet_is_rejected_naming_the_flag() {
    let output = giallar().args(["fuzz", "--generate", "--alphabet", ""]).output().unwrap();
    assert_clean_rejection(&output, "--alphabet");
}

#[test]
fn unknown_alphabet_preset_is_rejected_naming_the_flag() {
    let output =
        giallar().args(["fuzz", "--generate", "--alphabet", "toffoli-only"]).output().unwrap();
    assert_clean_rejection(&output, "--alphabet");
}

#[test]
fn invalid_circuits_env_knob_is_rejected_naming_the_variable() {
    let output = giallar()
        .args(["fuzz", "--generate"])
        .env("GIALLAR_FUZZ_CIRCUITS", "many")
        .output()
        .unwrap();
    assert_clean_rejection(&output, "GIALLAR_FUZZ_CIRCUITS");
}

#[test]
fn generative_flags_without_generate_are_usage_errors() {
    for flag in ["--circuits", "--width", "--depth", "--alphabet"] {
        let output = giallar().args(["fuzz", flag, "3"]).output().unwrap();
        assert_eq!(output.status.code(), Some(2), "{flag} should be a usage error");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(stderr.contains(flag), "usage error does not name {flag}: {stderr}");
    }
}

#[test]
fn tiny_generative_campaign_succeeds_and_reports() {
    let output = giallar()
        .args(["fuzz", "--generate", "--circuits", "2", "--alphabet", "basis"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(0), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("generative campaign:"), "missing summary: {stdout}");
    assert!(stdout.contains("0 survivors"), "missing survivor count: {stdout}");
}
