//! Shared flag parsing for the compile-shaped subcommands.
//!
//! `giallar compile` and `giallar client compile` accept byte-identical
//! flag surfaces; both route through [`CompileFlags::parse`], so the two
//! grammars cannot drift.  The `--device`, `--backend`, and `--format`
//! parsers also back `verify`, `check-cert`, and the other client
//! operations.

use giallar_core::backend::BackendSelection;
use qc_ir::CouplingMap;

use crate::{value_of, CmdError};

/// Output format of the compile-shaped commands (`table` | `json`).
pub enum OutputFormat {
    /// Human-readable aligned key/value lines.
    Table,
    /// Pretty-printed JSON.
    Json,
}

impl OutputFormat {
    /// Parses a `--format` value.
    pub fn parse(name: &str) -> Result<OutputFormat, CmdError> {
        match name {
            "table" => Ok(OutputFormat::Table),
            "json" => Ok(OutputFormat::Json),
            other => Err(CmdError::Usage(format!("--format: unknown format `{other}`"))),
        }
    }
}

/// Parses a device spec: `falcon27`, `line:<n>`, or `grid:<r>x<c>` (the
/// grammar lives in [`CouplingMap::from_spec`], shared with the serve
/// protocol's `compile` op and the certificate checker).
pub fn parse_device(spec: &str) -> Result<CouplingMap, CmdError> {
    CouplingMap::from_spec(spec).map_err(|error| CmdError::Usage(format!("--device: {error}")))
}

/// Pops and parses the value of a `--backend` flag (shared by `verify`,
/// `compile`, `check-cert`, and the client operations).
pub fn parse_backend(args: &[String], index: &mut usize) -> Result<BackendSelection, CmdError> {
    let name = value_of(args, index, "--backend")?;
    BackendSelection::parse(&name).ok_or_else(|| {
        let known: Vec<&str> = BackendSelection::ALL.iter().map(|s| s.id()).collect();
        CmdError::Usage(format!(
            "--backend: unknown backend `{name}`; known backends: {}",
            known.join(", ")
        ))
    })
}

/// The flag surface shared by `giallar compile` and `giallar client
/// compile`.  `cmd` names the subcommand in error messages (`"compile"` or
/// `"client compile"`).
pub struct CompileFlags {
    /// Positional input: a `.qasm` path (local compile only) or a named
    /// QASMBench circuit.
    pub input: Option<String>,
    /// `--device` spec, textual (defaults to `falcon27`).
    pub device_spec: String,
    /// `--seed` routing seed (defaults to 7).
    pub seed: u64,
    /// `--format` output format.
    pub format: OutputFormat,
    /// `--verified`: also run the wrapped pipeline and re-verify the
    /// scheduled passes.
    pub verified: bool,
    /// `--backend` routing for `--verified` re-verification and
    /// `--certify` evidence.
    pub backend: BackendSelection,
    /// `--certify <path>`: emit an equivalence certificate to this path.
    pub certify: Option<String>,
    /// `--list`: list the available named circuits instead of compiling.
    pub list: bool,
}

impl CompileFlags {
    /// Parses the shared compile flag grammar.
    pub fn parse(cmd: &str, args: &[String]) -> Result<CompileFlags, CmdError> {
        let mut flags = CompileFlags {
            input: None,
            device_spec: "falcon27".to_string(),
            seed: 7,
            format: OutputFormat::Table,
            verified: false,
            backend: BackendSelection::Default,
            certify: None,
            list: false,
        };
        let mut backend: Option<BackendSelection> = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--device" => flags.device_spec = value_of(args, &mut i, "--device")?,
                "--seed" => {
                    flags.seed = value_of(args, &mut i, "--seed")?
                        .parse()
                        .map_err(|_| CmdError::Usage("--seed: invalid seed".to_string()))?
                }
                "--format" => {
                    flags.format = OutputFormat::parse(&value_of(args, &mut i, "--format")?)?
                }
                "--verified" => flags.verified = true,
                "--backend" => backend = Some(parse_backend(args, &mut i)?),
                "--certify" => flags.certify = Some(value_of(args, &mut i, "--certify")?),
                "--list" => flags.list = true,
                flag if flag.starts_with("--") => {
                    return Err(CmdError::Usage(format!("{cmd}: unknown option `{flag}`")))
                }
                positional => {
                    if flags.input.is_some() {
                        return Err(CmdError::Usage(format!("{cmd}: more than one input given")));
                    }
                    flags.input = Some(positional.to_string());
                }
            }
            i += 1;
        }
        if backend.is_some() && !flags.verified && flags.certify.is_none() {
            // Silently ignoring the flag would let a user believe a
            // reference-backend verification ran when nothing did.
            return Err(CmdError::Usage(format!(
                "{cmd}: --backend selects the re-verification backend and requires \
                 --verified or --certify"
            )));
        }
        flags.backend = backend.unwrap_or_default();
        Ok(flags)
    }
}

/// Prints the built-in QASMBench suite (the `--list` output, shared so the
/// local and served compile commands list identically).
pub fn list_circuits() {
    for bench in qasmbench::benchmark_suite() {
        println!(
            "{:<16} {:>3} qubits {:>5} gates",
            bench.name,
            bench.circuit.num_qubits(),
            bench.circuit.size()
        );
    }
}
