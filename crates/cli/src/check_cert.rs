//! `giallar check-cert` — independently re-validate an equivalence
//! certificate emitted by `giallar compile --certify` or the daemon's
//! `certify` op.
//!
//! The checker needs nothing but the certificate file: it recomputes the
//! embedded circuits' fingerprints, matches the rule library and backend
//! routing of this binary, re-verifies the scheduled passes, replays the
//! pipeline on the embedded input, and compares the wire map, verdict, and
//! per-wire evidence.  Exit code 1 (with the first mismatching field named)
//! on any tampering.

use giallar_core::certificate::{check_certificate, EquivalenceCertificate};
use giallar_core::json::Value;

use crate::flags::OutputFormat;
use crate::{value_of, CmdError, CmdResult};

/// Runs `giallar check-cert`.
pub fn run(args: &[String]) -> CmdResult {
    let mut input: Option<String> = None;
    let mut format = OutputFormat::Table;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => format = OutputFormat::parse(&value_of(args, &mut i, "--format")?)?,
            flag if flag.starts_with("--") => {
                return Err(CmdError::Usage(format!("check-cert: unknown option `{flag}`")))
            }
            positional => {
                if input.is_some() {
                    return Err(CmdError::Usage(
                        "check-cert: more than one certificate given".to_string(),
                    ));
                }
                input = Some(positional.to_string());
            }
        }
        i += 1;
    }
    let path =
        input.ok_or_else(|| CmdError::Usage("check-cert: missing certificate path".to_string()))?;
    let text = std::fs::read_to_string(&path)
        .map_err(|error| CmdError::Failed(format!("reading {path}: {error}")))?;
    let value = giallar_core::json::parse(&text)
        .map_err(|error| CmdError::Failed(format!("parsing {path}: {error}")))?;
    let cert = EquivalenceCertificate::from_json(&value)
        .map_err(|error| CmdError::Failed(format!("{path}: {error}")))?;
    let outcome = check_certificate(&cert);
    match format {
        OutputFormat::Table => {
            println!("certificate:    {path}");
            println!("circuit:        {} on {} (seed {})", cert.circuit, cert.device, cert.seed);
            println!(
                "pipeline:       {} passes, backend {} (selection {})",
                cert.pipeline.len(),
                cert.backend,
                cert.selection
            );
            println!("wire map:       {:?}", cert.wire_map);
            println!(
                "evidence:       {} wires, {} agreed",
                cert.evidence.len(),
                cert.evidence.iter().filter(|e| e.agreed).count()
            );
            match &outcome {
                Ok(()) => println!("verdict:        VALID — replay reproduces the certificate"),
                Err(reason) => println!("verdict:        REFUSED — {reason}"),
            }
        }
        OutputFormat::Json => {
            let members = vec![
                ("schema", Value::String("giallar-check-cert/v1".to_string())),
                ("path", Value::String(path.clone())),
                ("circuit", Value::String(cert.circuit.clone())),
                ("device", Value::String(cert.device.clone())),
                ("seed", Value::Int(cert.seed as i64)),
                ("backend", Value::String(cert.backend.clone())),
                ("valid", Value::Bool(outcome.is_ok())),
                (
                    "reason",
                    outcome.as_ref().err().map_or(Value::Null, |r| Value::String(r.clone())),
                ),
            ];
            print!("{}", Value::object(members).to_pretty());
        }
    }
    outcome.map_err(|reason| CmdError::Failed(format!("{path}: certificate refused: {reason}")))
}
