//! `giallar verify` — registry verification with optional incremental cache
//! and selectable solver backend.

use std::path::PathBuf;

use giallar_core::backend::BackendSelection;
use giallar_core::cache::VerdictCache;
use giallar_core::json::Value;
use giallar_core::registry::{verified_passes, VerifiedPass};
use giallar_core::verifier::{render_table2, verify_passes_cached_with, PassReport};

use crate::{parse_count, value_of, CmdError, CmdResult};

/// Output format shared by `verify` and `client verify` (the served path
/// renders through the same code so its output is bit-identical).
pub(crate) enum Format {
    Table,
    Markdown,
    Json,
}

impl Format {
    /// Parses a `--format` value.
    pub(crate) fn parse(name: &str) -> Result<Format, CmdError> {
        match name {
            "table" => Ok(Format::Table),
            "markdown" => Ok(Format::Markdown),
            "json" => Ok(Format::Json),
            other => Err(CmdError::Usage(format!("--format: unknown format `{other}`"))),
        }
    }
}

struct Options {
    pass_filter: Option<String>,
    format: Format,
    jobs: Option<usize>,
    cache_path: Option<PathBuf>,
    deterministic: bool,
    expect_passes: Option<usize>,
    min_cache_hits: Option<usize>,
    backend: BackendSelection,
}

fn parse_options(args: &[String]) -> Result<Options, CmdError> {
    let mut options = Options {
        pass_filter: None,
        format: Format::Table,
        jobs: None,
        cache_path: None,
        deterministic: false,
        expect_passes: None,
        min_cache_hits: None,
        backend: BackendSelection::Default,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--pass" => options.pass_filter = Some(value_of(args, &mut i, "--pass")?),
            "--format" => options.format = Format::parse(&value_of(args, &mut i, "--format")?)?,
            "--jobs" => {
                let jobs = parse_count(&value_of(args, &mut i, "--jobs")?, "--jobs")?;
                if jobs == 0 {
                    return Err(CmdError::Usage("--jobs must be at least 1".to_string()));
                }
                options.jobs = Some(jobs);
            }
            "--cache" => {
                options.cache_path = Some(PathBuf::from(value_of(args, &mut i, "--cache")?))
            }
            "--deterministic" => options.deterministic = true,
            "--expect-passes" => {
                options.expect_passes = Some(parse_count(
                    &value_of(args, &mut i, "--expect-passes")?,
                    "--expect-passes",
                )?)
            }
            "--min-cache-hits" => {
                options.min_cache_hits = Some(parse_count(
                    &value_of(args, &mut i, "--min-cache-hits")?,
                    "--min-cache-hits",
                )?)
            }
            "--backend" => options.backend = crate::flags::parse_backend(args, &mut i)?,
            other => return Err(CmdError::Usage(format!("verify: unknown option `{other}`"))),
        }
        i += 1;
    }
    Ok(options)
}

/// Full Levenshtein distance; [`near_miss_passes`] applies the suggestion
/// threshold on top (pass names are short, so the uncapped scan is cheap).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut previous: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut current = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let substitution = previous[j] + usize::from(ca != cb);
            current.push(substitution.min(previous[j + 1] + 1).min(current[j] + 1));
        }
        previous = current;
    }
    previous[b.len()]
}

/// Near-miss candidates for a mistyped `--pass` value: case-insensitive
/// matches, substring matches, and names within a small edit distance,
/// closest first.
fn near_miss_passes<'a>(typo: &str, known: &[&'a str]) -> Vec<&'a str> {
    let lower = typo.to_lowercase();
    let mut scored: Vec<(usize, &str)> = known
        .iter()
        .filter_map(|&name| {
            let name_lower = name.to_lowercase();
            let distance = if name_lower == lower {
                0
            } else if name_lower.contains(&lower) || lower.contains(&name_lower) {
                1
            } else {
                edit_distance(&name_lower, &lower)
            };
            // A third of the name wrong (at least 2 edits) is no longer a
            // near miss.
            (distance <= 2.max(name.len() / 3)).then_some((distance, name))
        })
        .collect();
    scored.sort();
    scored.into_iter().take(5).map(|(_, name)| name).collect()
}

/// The error for a `--pass` filter that matches nothing: suggest near
/// misses when there are any, otherwise list every known pass.
fn unknown_pass_error(typo: &str) -> CmdError {
    let passes = verified_passes();
    let known: Vec<&str> = passes.iter().map(|p| p.name).collect();
    let near = near_miss_passes(typo, &known);
    if near.is_empty() {
        CmdError::Usage(format!(
            "verify: unknown pass `{typo}`; known passes: {}",
            known.join(", ")
        ))
    } else {
        CmdError::Usage(format!(
            "verify: unknown pass `{typo}`; did you mean {}? (misspelled filters verify \
             nothing, so they are an error)",
            near.iter().map(|n| format!("`{n}`")).collect::<Vec<_>>().join(", ")
        ))
    }
}

/// Runs `giallar verify`.
pub fn run(args: &[String]) -> CmdResult {
    let options = parse_options(args)?;
    if let Some(jobs) = options.jobs {
        // The vendored rayon shim sizes its scoped-thread pool from
        // RAYON_NUM_THREADS at call time; no worker threads exist yet here.
        // The bound covers both halves of the batched discharge pipeline:
        // parallel obligation generation and the work-stealing group
        // discharge both size their worker count from the rayon pool, so
        // `--jobs 1` runs fully sequentially with byte-identical output.
        std::env::set_var("RAYON_NUM_THREADS", jobs.to_string());
    }

    let passes: Vec<VerifiedPass> = verified_passes()
        .into_iter()
        .filter(|p| options.pass_filter.as_deref().is_none_or(|f| p.name == f))
        .collect();
    if passes.is_empty() {
        return Err(unknown_pass_error(options.pass_filter.as_deref().unwrap_or_default()));
    }

    let mut cache = match &options.cache_path {
        Some(path) => {
            let (cache, warning) = VerdictCache::load_lenient(path);
            if let Some(warning) = warning {
                eprintln!("warning: {warning}");
            }
            cache
        }
        None => VerdictCache::new(),
    };

    let reports = verify_passes_cached_with(&passes, &mut cache, options.backend);

    // The report comes first, and a failure to persist the cache is a
    // warning, not a failed verification: the verdicts are already in hand,
    // and exit code 1 must keep meaning "a pass did not verify" (a later
    // warm run gated on --min-cache-hits will still surface the cold cache).
    print!("{}", render_reports(&reports, &options.format, options.deterministic, options.backend));
    if let Some(path) = &options.cache_path {
        match cache.save(path) {
            Ok(()) => {
                eprintln!(
                    "cache {}: {} obligation hits, {} misses across {} passes \
                     ({} entries stored, backend {})",
                    path.display(),
                    cache.hits(),
                    cache.misses(),
                    cache.pass_stats().len(),
                    cache.len(),
                    options.backend
                );
                // Per-pass stats: name the passes that did real solver work;
                // fully warm passes are only summarized.
                for stats in cache.pass_stats().iter().filter(|s| s.misses > 0) {
                    eprintln!(
                        "cache {}: {}: {} hits, {} misses (re-discharged)",
                        path.display(),
                        stats.pass,
                        stats.hits,
                        stats.misses
                    );
                }
            }
            Err(error) => {
                eprintln!("warning: could not save cache {}: {error}", path.display())
            }
        }
    }

    let verified = reports.iter().filter(|r| r.verified).count();
    if let Some(first) = reports.iter().find(|r| !r.verified) {
        return Err(CmdError::Failed(format!(
            "{} of {} passes failed verification; first: {} — {}",
            reports.len() - verified,
            reports.len(),
            first.name,
            first.failure.as_deref().unwrap_or("no counterexample recorded")
        )));
    }
    if let Some(expected) = options.expect_passes {
        if reports.len() != expected {
            return Err(CmdError::Failed(format!(
                "pass-count drift: expected {expected} verified passes, got {}",
                reports.len()
            )));
        }
    }
    if let Some(floor) = options.min_cache_hits {
        if cache.hits() < floor {
            return Err(CmdError::Failed(format!(
                "cache hits below floor: {} < {floor} obligations (cache invalidation bug, or \
                 a cold cache where a warm one was expected)",
                cache.hits()
            )));
        }
    }
    Ok(())
}

/// Renders verification reports in the requested format.  `giallar verify`
/// and `giallar client verify` both call this, which is what makes a served
/// run's output byte-identical to a local one at equal verdicts.
pub(crate) fn render_reports(
    reports: &[PassReport],
    format: &Format,
    deterministic: bool,
    backend: BackendSelection,
) -> String {
    let verified = reports.iter().filter(|r| r.verified).count();
    match format {
        Format::Table => {
            let mut out = if deterministic {
                // No machine-dependent columns: two runs with equal verdicts
                // must render byte-identically.
                let mut out = format!(
                    "{:<32} {:>8} {:>10}  {}\n",
                    "Pass name", "Pass LOC", "#subgoals", "verified"
                );
                for report in reports {
                    out.push_str(&format!(
                        "{:<32} {:>8} {:>10}  {}\n",
                        report.name,
                        report.pass_loc,
                        report.subgoals,
                        if report.verified { "yes" } else { "NO" }
                    ));
                }
                out
            } else {
                render_table2(reports)
            };
            out.push_str(&format!(
                "\nverified {verified} / {} passes (backend {}, rule library {})\n",
                reports.len(),
                backend,
                qc_symbolic::rule_library_fingerprint()
            ));
            out
        }
        Format::Markdown => {
            let mut out = String::new();
            if deterministic {
                out.push_str("| Pass | LOC | Subgoals | Verified |\n");
                out.push_str("|---|---:|---:|---|\n");
            } else {
                out.push_str("| Pass | LOC | Subgoals | Time (s) | Verified |\n");
                out.push_str("|---|---:|---:|---:|---|\n");
            }
            for report in reports {
                let verdict = if report.verified {
                    "yes".to_string()
                } else {
                    format!("**NO** — {}", report.failure.as_deref().unwrap_or(""))
                };
                if deterministic {
                    out.push_str(&format!(
                        "| {} | {} | {} | {} |\n",
                        report.name, report.pass_loc, report.subgoals, verdict
                    ));
                } else {
                    out.push_str(&format!(
                        "| {} | {} | {} | {:.3} | {} |\n",
                        report.name, report.pass_loc, report.subgoals, report.time_seconds, verdict
                    ));
                }
            }
            out.push_str(&format!("\nverified {verified} / {} passes\n", reports.len()));
            out
        }
        Format::Json => Value::object(vec![
            ("schema", Value::String("giallar-verify/v2".to_string())),
            ("backend", Value::String(backend.id().to_string())),
            (
                "rule_library_fingerprint",
                Value::String(qc_symbolic::rule_library_fingerprint().to_hex()),
            ),
            ("passes", Value::Int(reports.len() as i64)),
            ("verified", Value::Int(verified as i64)),
            ("all_verified", Value::Bool(verified == reports.len())),
            (
                "reports",
                Value::Array(reports.iter().map(|r| r.to_json_value(!deterministic)).collect()),
            ),
        ])
        .to_pretty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_misses_rank_close_names_first() {
        let known = ["CXCancellation", "CheckMap", "CheckCXDirection", "LookaheadSwap"];
        let near = near_miss_passes("CXCancelation", &known);
        assert_eq!(near.first(), Some(&"CXCancellation"));
        // Case-insensitive exact match wins outright.
        assert_eq!(near_miss_passes("checkmap", &known).first(), Some(&"CheckMap"));
        // Substrings are near misses.
        assert!(near_miss_passes("Lookahead", &known).contains(&"LookaheadSwap"));
        // Garbage matches nothing.
        assert!(near_miss_passes("zzzzzzzz", &known).is_empty());
    }

    #[test]
    fn edit_distance_is_symmetric_and_small_for_typos() {
        assert_eq!(edit_distance("CheckMap", "CheckMap"), 0);
        assert_eq!(edit_distance("CheckMap", "ChekMap"), 1);
        assert_eq!(edit_distance("ChekMap", "CheckMap"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
    }
}
