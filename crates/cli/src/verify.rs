//! `giallar verify` — registry verification with optional incremental cache.

use std::path::PathBuf;

use giallar_core::cache::VerdictCache;
use giallar_core::json::Value;
use giallar_core::registry::{verified_passes, VerifiedPass};
use giallar_core::verifier::{render_table2, verify_passes_cached, PassReport};

use crate::{parse_count, value_of, CmdError, CmdResult};

enum Format {
    Table,
    Markdown,
    Json,
}

struct Options {
    pass_filter: Option<String>,
    format: Format,
    jobs: Option<usize>,
    cache_path: Option<PathBuf>,
    deterministic: bool,
    expect_passes: Option<usize>,
    min_cache_hits: Option<usize>,
}

fn parse_options(args: &[String]) -> Result<Options, CmdError> {
    let mut options = Options {
        pass_filter: None,
        format: Format::Table,
        jobs: None,
        cache_path: None,
        deterministic: false,
        expect_passes: None,
        min_cache_hits: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--pass" => options.pass_filter = Some(value_of(args, &mut i, "--pass")?),
            "--format" => {
                options.format = match value_of(args, &mut i, "--format")?.as_str() {
                    "table" => Format::Table,
                    "markdown" => Format::Markdown,
                    "json" => Format::Json,
                    other => {
                        return Err(CmdError::Usage(format!("--format: unknown format `{other}`")))
                    }
                }
            }
            "--jobs" => {
                let jobs = parse_count(&value_of(args, &mut i, "--jobs")?, "--jobs")?;
                if jobs == 0 {
                    return Err(CmdError::Usage("--jobs must be at least 1".to_string()));
                }
                options.jobs = Some(jobs);
            }
            "--cache" => {
                options.cache_path = Some(PathBuf::from(value_of(args, &mut i, "--cache")?))
            }
            "--deterministic" => options.deterministic = true,
            "--expect-passes" => {
                options.expect_passes = Some(parse_count(
                    &value_of(args, &mut i, "--expect-passes")?,
                    "--expect-passes",
                )?)
            }
            "--min-cache-hits" => {
                options.min_cache_hits = Some(parse_count(
                    &value_of(args, &mut i, "--min-cache-hits")?,
                    "--min-cache-hits",
                )?)
            }
            other => return Err(CmdError::Usage(format!("verify: unknown option `{other}`"))),
        }
        i += 1;
    }
    Ok(options)
}

/// Runs `giallar verify`.
pub fn run(args: &[String]) -> CmdResult {
    let options = parse_options(args)?;
    if let Some(jobs) = options.jobs {
        // The vendored rayon shim sizes its scoped-thread pool from
        // RAYON_NUM_THREADS at call time; no worker threads exist yet here.
        std::env::set_var("RAYON_NUM_THREADS", jobs.to_string());
    }

    let passes: Vec<VerifiedPass> = verified_passes()
        .into_iter()
        .filter(|p| options.pass_filter.as_deref().is_none_or(|f| p.name == f))
        .collect();
    if passes.is_empty() {
        let known: Vec<&str> = verified_passes().iter().map(|p| p.name).collect();
        return Err(CmdError::Usage(format!(
            "verify: unknown pass `{}`; known passes: {}",
            options.pass_filter.unwrap_or_default(),
            known.join(", ")
        )));
    }

    let mut cache = match &options.cache_path {
        Some(path) => match VerdictCache::load(path) {
            Ok(cache) => cache,
            Err(error) => {
                eprintln!(
                    "warning: ignoring unreadable cache {} ({error}); starting empty",
                    path.display()
                );
                VerdictCache::new()
            }
        },
        None => VerdictCache::new(),
    };

    let reports = verify_passes_cached(&passes, &mut cache);

    // The report comes first, and a failure to persist the cache is a
    // warning, not a failed verification: the verdicts are already in hand,
    // and exit code 1 must keep meaning "a pass did not verify" (a later
    // warm run gated on --min-cache-hits will still surface the cold cache).
    print!("{}", render(&reports, &options));
    if let Some(path) = &options.cache_path {
        match cache.save(path) {
            Ok(()) => eprintln!(
                "cache {}: {} hits, {} misses ({} entries stored)",
                path.display(),
                cache.hits(),
                cache.misses(),
                cache.len()
            ),
            Err(error) => {
                eprintln!("warning: could not save cache {}: {error}", path.display())
            }
        }
    }

    let verified = reports.iter().filter(|r| r.verified).count();
    if let Some(first) = reports.iter().find(|r| !r.verified) {
        return Err(CmdError::Failed(format!(
            "{} of {} passes failed verification; first: {} — {}",
            reports.len() - verified,
            reports.len(),
            first.name,
            first.failure.as_deref().unwrap_or("no counterexample recorded")
        )));
    }
    if let Some(expected) = options.expect_passes {
        if reports.len() != expected {
            return Err(CmdError::Failed(format!(
                "pass-count drift: expected {expected} verified passes, got {}",
                reports.len()
            )));
        }
    }
    if let Some(floor) = options.min_cache_hits {
        if cache.hits() < floor {
            return Err(CmdError::Failed(format!(
                "cache hits below floor: {} < {floor} (cache invalidation bug, or a cold cache \
                 where a warm one was expected)",
                cache.hits()
            )));
        }
    }
    Ok(())
}

fn render(reports: &[PassReport], options: &Options) -> String {
    let verified = reports.iter().filter(|r| r.verified).count();
    match options.format {
        Format::Table => {
            let mut out = if options.deterministic {
                // No machine-dependent columns: two runs with equal verdicts
                // must render byte-identically.
                let mut out = format!(
                    "{:<32} {:>8} {:>10}  {}\n",
                    "Pass name", "Pass LOC", "#subgoals", "verified"
                );
                for report in reports {
                    out.push_str(&format!(
                        "{:<32} {:>8} {:>10}  {}\n",
                        report.name,
                        report.pass_loc,
                        report.subgoals,
                        if report.verified { "yes" } else { "NO" }
                    ));
                }
                out
            } else {
                render_table2(reports)
            };
            out.push_str(&format!(
                "\nverified {verified} / {} passes (rule library {})\n",
                reports.len(),
                qc_symbolic::rule_library_fingerprint()
            ));
            out
        }
        Format::Markdown => {
            let mut out = String::new();
            if options.deterministic {
                out.push_str("| Pass | LOC | Subgoals | Verified |\n");
                out.push_str("|---|---:|---:|---|\n");
            } else {
                out.push_str("| Pass | LOC | Subgoals | Time (s) | Verified |\n");
                out.push_str("|---|---:|---:|---:|---|\n");
            }
            for report in reports {
                let verdict = if report.verified {
                    "yes".to_string()
                } else {
                    format!("**NO** — {}", report.failure.as_deref().unwrap_or(""))
                };
                if options.deterministic {
                    out.push_str(&format!(
                        "| {} | {} | {} | {} |\n",
                        report.name, report.pass_loc, report.subgoals, verdict
                    ));
                } else {
                    out.push_str(&format!(
                        "| {} | {} | {} | {:.3} | {} |\n",
                        report.name, report.pass_loc, report.subgoals, report.time_seconds, verdict
                    ));
                }
            }
            out.push_str(&format!("\nverified {verified} / {} passes\n", reports.len()));
            out
        }
        Format::Json => Value::object(vec![
            ("schema", Value::String("giallar-verify/v1".to_string())),
            (
                "rule_library_fingerprint",
                Value::String(qc_symbolic::rule_library_fingerprint().to_hex()),
            ),
            ("passes", Value::Int(reports.len() as i64)),
            ("verified", Value::Int(verified as i64)),
            ("all_verified", Value::Bool(verified == reports.len())),
            (
                "reports",
                Value::Array(
                    reports.iter().map(|r| r.to_json_value(!options.deterministic)).collect(),
                ),
            ),
        ])
        .to_pretty(),
    }
}
