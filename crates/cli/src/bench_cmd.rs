//! `giallar bench` — regenerate the committed benchmark artifacts.
//!
//! Emits `BENCH_table2_verification.json` and
//! `BENCH_figure11_compilation.json` through the same writers the Criterion
//! harness uses (`bench::table2_artifact_json` /
//! `bench::figure11_artifact_json`), so the committed artifacts and the
//! bench harness cannot drift.  Output is deterministic by default —
//! machine-dependent timing sections are added only with `--timings`.

use std::path::PathBuf;

use bench::{figure11_artifact_json, figure11_rows, measure_verification_speedup, table2_reports};
use qc_ir::CouplingMap;

use crate::{value_of, CmdError, CmdResult};

/// Runs `giallar bench`.
pub fn run(args: &[String]) -> CmdResult {
    let mut out_dir = PathBuf::from(".");
    let mut seed = 7u64;
    let mut timings = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => out_dir = PathBuf::from(value_of(args, &mut i, "--out")?),
            "--seed" => {
                seed = value_of(args, &mut i, "--seed")?
                    .parse()
                    .map_err(|_| CmdError::Usage("--seed: invalid seed".to_string()))?
            }
            "--timings" => timings = true,
            other => return Err(CmdError::Usage(format!("bench: unknown option `{other}`"))),
        }
        i += 1;
    }

    std::fs::create_dir_all(&out_dir).map_err(|error| {
        CmdError::Failed(format!("creating output dir {}: {error}", out_dir.display()))
    })?;

    // Table 2: verify the full registry, then render the artifact.
    let reports = table2_reports();
    let verified = reports.iter().filter(|r| r.verified).count();
    let speedup = if timings { Some(measure_verification_speedup(3)) } else { None };
    let table2 = bench::table2_artifact_json(&reports, speedup.as_ref());
    let table2_path = out_dir.join("BENCH_table2_verification.json");
    std::fs::write(&table2_path, &table2)
        .map_err(|error| CmdError::Failed(format!("writing {}: {error}", table2_path.display())))?;
    println!("wrote {} ({} passes, {verified} verified)", table2_path.display(), reports.len());

    // Figure 11: compile the QASMBench suite on the paper's 27-qubit device.
    let device = CouplingMap::falcon27();
    let rows = figure11_rows(&device, seed);
    let figure11 = figure11_artifact_json("falcon27", seed, &rows, timings);
    let figure11_path = out_dir.join("BENCH_figure11_compilation.json");
    std::fs::write(&figure11_path, &figure11).map_err(|error| {
        CmdError::Failed(format!("writing {}: {error}", figure11_path.display()))
    })?;
    println!("wrote {} ({} circuits compiled)", figure11_path.display(), rows.len());

    if verified != reports.len() {
        return Err(CmdError::Failed(format!(
            "artifacts written, but only {verified} of {} passes verified",
            reports.len()
        )));
    }
    Ok(())
}
