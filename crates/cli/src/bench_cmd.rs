//! `giallar bench` — regenerate or drift-check the committed benchmark
//! artifacts.
//!
//! Emits `BENCH_table2_verification.json`,
//! `BENCH_figure11_compilation.json`, `BENCH_solver_microbench.json`,
//! `BENCH_serve_latency.json`, `BENCH_certify_overhead.json`, and
//! `BENCH_bug_detection.json` through the same writers the Criterion
//! harness and the `fuzz` subcommand use (`bench::table2_artifact_json` /
//! `bench::figure11_artifact_json` /
//! `bench::solver_microbench_artifact_json` /
//! `bench::serve_latency_artifact_json` / `bench::certify_artifact_json` /
//! `bench::bug_detection_artifact_json`), so the committed artifacts and
//! the bench harness cannot drift.  Output is deterministic by default —
//! machine-dependent timing sections are added only with `--timings`.
//!
//! With `--check <dir>` nothing is written: the artifacts are regenerated in
//! memory and compared structurally against the committed files in `<dir>`,
//! ignoring timing fields (`bench::strip_timing`), so committed artifacts
//! may carry timing evidence while any change to verdicts, subgoal counts,
//! fingerprints, or workload checksums fails the check.

use std::path::{Path, PathBuf};

use bench::{
    bug_detection_artifact_json, bug_detection_campaign, certify_artifact_json, certify_rows,
    figure11_artifact_json, figure11_rows, measure_verification_speedup,
    serve_latency_artifact_json, serve_latency_rows, solver_microbench_artifact_json,
    solver_microbench_rows, strip_timing, table2_reports, CAMPAIGN_SEED,
};
use giallar_core::json;
use giallar_core::mutate::parse_seed;
use qc_ir::CouplingMap;

use crate::{value_of, CmdError, CmdResult};

/// Iterations for the solver microbenchmarks: enough for a stable best-of
/// when recording timings, minimal when only the deterministic structure is
/// needed.
fn microbench_iters(timings: bool) -> usize {
    if timings {
        7
    } else {
        1
    }
}

/// Runs `giallar bench`.
pub fn run(args: &[String]) -> CmdResult {
    let mut out_dir = PathBuf::from(".");
    let mut seed = 7u64;
    let mut timings = false;
    let mut check_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => out_dir = PathBuf::from(value_of(args, &mut i, "--out")?),
            "--seed" => {
                seed = value_of(args, &mut i, "--seed")?
                    .parse()
                    .map_err(|_| CmdError::Usage("--seed: invalid seed".to_string()))?
            }
            "--timings" => timings = true,
            "--check" => check_dir = Some(PathBuf::from(value_of(args, &mut i, "--check")?)),
            other => return Err(CmdError::Usage(format!("bench: unknown option `{other}`"))),
        }
        i += 1;
    }

    // Regenerate every artifact (deterministic unless --timings).
    let reports = table2_reports();
    let verified = reports.iter().filter(|r| r.verified).count();
    let speedup = if timings { Some(measure_verification_speedup(3)) } else { None };
    let table2 = bench::table2_artifact_json(&reports, speedup.as_ref());

    let device = CouplingMap::falcon27();
    let rows = figure11_rows(&device, seed);
    let figure11 = figure11_artifact_json("falcon27", seed, &rows, timings);

    let micro_rows = solver_microbench_rows(microbench_iters(timings));
    let microbench = solver_microbench_artifact_json(&micro_rows, timings);

    // Measured requests per serve scenario: a real load when recording
    // timings, one round-trip each when only the structure is needed.
    let serve_rows = serve_latency_rows(if timings { 40 } else { 1 });
    let serve_latency = serve_latency_artifact_json(&serve_rows, timings);

    let certify = certify_rows(&device, "falcon27", seed);
    let certify_overhead = certify_artifact_json("falcon27", seed, &certify, timings);

    let campaign = bug_detection_campaign(
        parse_seed(CAMPAIGN_SEED),
        None,
        Some(&bench::pinned_generative_config(parse_seed(CAMPAIGN_SEED))),
    );
    let bug_detection = bug_detection_artifact_json(&campaign, timings);

    let artifacts: [(&str, &str); 6] = [
        ("BENCH_table2_verification.json", table2.as_str()),
        ("BENCH_figure11_compilation.json", figure11.as_str()),
        ("BENCH_solver_microbench.json", microbench.as_str()),
        ("BENCH_serve_latency.json", serve_latency.as_str()),
        ("BENCH_certify_overhead.json", certify_overhead.as_str()),
        ("BENCH_bug_detection.json", bug_detection.as_str()),
    ];

    if let Some(dir) = check_dir {
        return check_artifacts(&dir, &artifacts);
    }

    std::fs::create_dir_all(&out_dir).map_err(|error| {
        CmdError::Failed(format!("creating output dir {}: {error}", out_dir.display()))
    })?;
    for (name, content) in &artifacts {
        let path = out_dir.join(name);
        std::fs::write(&path, content)
            .map_err(|error| CmdError::Failed(format!("writing {}: {error}", path.display())))?;
        println!("wrote {}", path.display());
    }
    let generative = campaign.generative.as_ref().expect("bench always runs generative");
    println!(
        "table2: {} passes, {verified} verified; figure11: {} circuits; microbench: {} \
         workloads; serve: {} scenarios; certify: {} certificates; fuzz: {}/{} mutants \
         detected; generative: {}/{} semantic faults refused over {} circuits",
        reports.len(),
        rows.len(),
        micro_rows.len(),
        serve_rows.len(),
        certify.len(),
        campaign.report.detected(),
        campaign.report.total(),
        generative.refused(),
        generative.semantic(),
        generative.generated,
    );

    if verified != reports.len() {
        return Err(CmdError::Failed(format!(
            "artifacts written, but only {verified} of {} passes verified",
            reports.len()
        )));
    }
    Ok(())
}

/// Compares regenerated artifacts against the committed files in `dir`,
/// ignoring machine-dependent timing fields on both sides.
fn check_artifacts(dir: &Path, artifacts: &[(&str, &str)]) -> CmdResult {
    let mut drifted = Vec::new();
    for (name, regenerated) in artifacts {
        let path = dir.join(name);
        let committed = std::fs::read_to_string(&path)
            .map_err(|error| CmdError::Failed(format!("reading {}: {error}", path.display())))?;
        let committed = json::parse(&committed)
            .map_err(|error| CmdError::Failed(format!("parsing {}: {error}", path.display())))?;
        let regenerated = json::parse(regenerated)
            .map_err(|error| CmdError::Failed(format!("parsing regenerated {name}: {error}")))?;
        if strip_timing(&committed) == strip_timing(&regenerated) {
            println!("check {name}: ok");
        } else {
            println!("check {name}: STRUCTURAL DRIFT");
            drifted.push(*name);
        }
    }
    if drifted.is_empty() {
        Ok(())
    } else {
        Err(CmdError::Failed(format!(
            "benchmark artifacts drifted from the committed files: {} — \
             regenerate with `giallar bench --timings --out .` and commit",
            drifted.join(", ")
        )))
    }
}
