//! The `giallar` command line.
//!
//! The first-class entry point to the Giallar reproduction — what a CI job
//! or a user drives instead of the examples:
//!
//! * `giallar verify` — push-button verification of the 44-pass registry
//!   (or one pass), optionally through the incremental verification cache,
//!   with `table`, `markdown`, or `json` output and a nonzero exit code on
//!   any unverified pass.
//! * `giallar compile` — run the baseline transpiler on an OpenQASM file or
//!   a named QASMBench circuit and print compilation stats; `--certify`
//!   additionally emits a machine-checkable equivalence certificate.
//! * `giallar check-cert` — independently re-validate a certificate,
//!   refusing any tampering with fingerprints, wire maps, or evidence.
//! * `giallar bench` — emit the Table 2 / Figure 11 / solver-microbench /
//!   serve-latency JSON artifacts (the committed `BENCH_*.json` files), or
//!   drift-check them against a directory with `--check` (timing fields
//!   ignored).
//! * `giallar fuzz` — the fault-injection campaign: systematically wound
//!   the registry's proof obligations and real compilations, and fail
//!   unless the verifier refutes every wound (the `BENCH_bug_detection`
//!   artifact is this campaign's JSON output).
//! * `giallar serve` — run the resident verification daemon: registry
//!   obligations and solver state stay warm behind a socket, requests batch
//!   by goal class, and verdicts live in a sharded LRU/TTL cache.
//! * `giallar client` — talk to a running daemon; `client verify` renders
//!   through the same code as `giallar verify`, so served output is
//!   byte-identical at equal cache state.
//!
//! Exit codes: `0` success, `1` verification/compilation failure or a failed
//! `--expect-passes` / `--min-cache-hits` assertion, `2` usage error.

mod bench_cmd;
mod check_cert;
mod client_cmd;
mod compile;
mod flags;
mod fuzz;
mod serve_cmd;
mod verify;

use std::process::ExitCode;

/// How a subcommand failed, mapped to the process exit code.
pub enum CmdError {
    /// Bad invocation (unknown flag, missing value, unknown pass) — exit 2.
    Usage(String),
    /// The command ran and the result is a failure (unverified pass,
    /// pass-count drift, missed cache-hit floor, I/O error) — exit 1.
    Failed(String),
}

/// Result type shared by all subcommands.
pub type CmdResult = Result<(), CmdError>;

/// Pops the value of `--flag value`, advancing the cursor.
pub fn value_of(args: &[String], index: &mut usize, flag: &str) -> Result<String, CmdError> {
    *index += 1;
    args.get(*index).cloned().ok_or_else(|| CmdError::Usage(format!("{flag} needs a value")))
}

/// Parses the value of a numeric flag.
pub fn parse_count(value: &str, flag: &str) -> Result<usize, CmdError> {
    value.parse::<usize>().map_err(|_| CmdError::Usage(format!("{flag}: invalid count `{value}`")))
}

const USAGE: &str =
    "giallar — push-button verification for the Qiskit compiler (PLDI 2022 reproduction)

USAGE:
    giallar <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
    verify     verify the 44-pass registry (all passes or --pass <name>)
        --pass <name>          verify a single pass (typos get suggestions)
        --format <fmt>         table (default) | markdown | json
        --jobs <n>             worker threads for obligation generation and
                               batched group discharge
        --backend <name>       solver backend routing:
                               default | reference | saturate
                               (reference = naive normalizer, saturate =
                               equality-saturation e-graph; both for
                               differential cross-checks)
        --cache <file>         incremental verification cache (JSON; created
                               when missing, re-discharges only obligations
                               whose fingerprint changed)
        --deterministic        omit machine-dependent timing from the output
        --expect-passes <n>    fail unless exactly n passes were verified
        --min-cache-hits <n>   fail unless the cache answered >= n
                               obligations
    compile    compile an OpenQASM file or a named QASMBench circuit
        <input>                path to a .qasm file, or a circuit name
                               (e.g. qft_16; see --list)
        --device <dev>         falcon27 (default) | line:<n> | grid:<r>x<c>
        --seed <n>             routing seed (default 7)
        --format <fmt>         table (default) | json
        --verified             also run the wrapped (Giallar) pipeline,
                               print the overhead inline, and re-verify the
                               scheduled passes via the backend registry
        --backend <name>       backend for --verified re-verification and
                               --certify evidence
        --certify <path>       emit a machine-checkable equivalence
                               certificate (check it with check-cert);
                               works with or without --verified
        --list                 list the available named circuits
    check-cert independently re-validate an equivalence certificate
        <path>                 certificate file written by compile --certify
                               or the daemon's certify op
        --format <fmt>         table (default) | json
    bench      regenerate or drift-check the committed benchmark artifacts
        --out <dir>            output directory (default: .)
        --seed <n>             Figure 11 routing seed (default 7)
        --timings              include machine-dependent timing sections
        --check <dir>          write nothing; compare regenerated artifacts
                               against the committed files in <dir>, ignoring
                               timing fields (nonzero exit on drift)
    fuzz       run the fault-injection campaign: wound every falsifiable
                               registry obligation, require every backend
                               routing to refute each wound, and sabotage
                               real compilations through check-cert
        --seed <s>             campaign seed: decimal, 0x-hex, or any string
                               (hashed); default 0xg1allar
        --mutants <n>          bound the mutant corpus (default: all)
        --pass <name>          wound a single pass (skips the pipeline leg)
        --format <fmt>         table (default) | json (the BENCH artifact)
        --timings              include machine-dependent timing sections
        --no-pipeline          skip the end-to-end sabotage leg
        --generate             generative campaign instead: compile a seeded
                               random-circuit corpus, wound each compilation
                               with a drawn sabotage matrix, require every
                               backend to refuse each semantic fault, and
                               delta-debug any survivor to a minimal edit
        --circuits <n>         corpus size (default 200, or the
                               GIALLAR_FUZZ_CIRCUITS environment variable)
        --width <n>            max register width, 2..=device width
                               (default 5)
        --depth <n>            max drawn gate count, 1..=512 (default 16)
        --alphabet <name>      gate alphabet: basis | clifford+t | full |
                               all (default: all, cycling per circuit)
    serve      run the resident verification daemon (giallar-serve/v2;
                               bare v1 client lines still served)
        --listen <spec>        TCP address (default 127.0.0.1:7411) or
                               unix:<path>; TCP port 0 picks a free port
        --shards <n>           verdict cache shards (default 8)
        --max-entries <n>      LRU capacity across shards (default unbounded)
        --ttl <n>              evict entries idle for n request batches
        --cache <file>         warm-start from this verify cache file and
                               write it back on shutdown
    client     send one operation to a running daemon
        --connect <spec>       daemon endpoint (default 127.0.0.1:7411, or
                               unix:<path>); must precede the operation
        status                 print the resident census and shard stats
        verify                 served verification; renders like `verify`
            --pass <name>      verify one pass (repeatable)
            --per-pass         replay the whole registry one request per pass
            --backend <name>   solver backend routing:
                               default | reference | saturate
            --format <fmt>     table (default) | markdown | json
            --deterministic    omit machine-dependent timing from the output
            --expect-passes <n>  fail unless exactly n passes were verified
            --min-cache-hits <n> fail unless the server cache answered >= n
        compile <circuit>      compile a named QASMBench circuit server-side
                               (same flag grammar as `giallar compile`)
            --device <dev>     falcon27 (default) | line:<n> | grid:<r>x<c>
            --seed <n>         routing seed (default 7)
            --format <fmt>     table (default) | json
            --certify <path>   certify server-side and write the daemon's
                               certificate (byte-identical to a local
                               compile --certify of the same input)
            --backend <name>   backend for --certify evidence
            --list             list the available named circuits
        invalidate <pass>      drop one pass's cached verdicts
            --backend <name>   routing whose cache keys to drop
        compact [backend ...]  drop entries from retired backends or a stale
                               rule library
        evict                  run one LRU/TTL eviction sweep now
        shutdown               stop the daemon (it replies first)

Exit codes: 0 success, 1 failure, 2 usage error.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("verify") => verify::run(&args[1..]),
        Some("compile") => compile::run(&args[1..]),
        Some("check-cert") => check_cert::run(&args[1..]),
        Some("bench") => bench_cmd::run(&args[1..]),
        Some("fuzz") => fuzz::run(&args[1..]),
        Some("serve") => serve_cmd::run(&args[1..]),
        Some("client") => client_cmd::run(&args[1..]),
        Some("--help") | Some("-h") | Some("help") => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(CmdError::Usage(format!("unknown subcommand `{other}`"))),
        None => Err(CmdError::Usage("missing subcommand".to_string())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CmdError::Failed(message)) => {
            eprintln!("error: {message}");
            ExitCode::from(1)
        }
        Err(CmdError::Usage(message)) => {
            eprintln!("usage error: {message}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
