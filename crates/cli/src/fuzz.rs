//! `giallar fuzz` — the fault-injection campaign.
//!
//! Enumerates mutants of the registry's proof obligations, discharges each
//! through every solver-backend routing, sabotages real compilations through the
//! certificate checker, and exits nonzero if any semantic wound survives.

use bench::{bug_detection_artifact_json, bug_detection_text, BugDetection, CAMPAIGN_SEED};
use giallar_core::backend::BackendSelection;
use giallar_core::mutate::{parse_seed, run_campaign, run_pipeline_campaign, CampaignConfig};

use crate::{parse_count, value_of, CmdError, CmdResult};

/// Runs `giallar fuzz` with the args after the subcommand name.
pub fn run(args: &[String]) -> CmdResult {
    let mut seed_text = CAMPAIGN_SEED.to_string();
    let mut max_mutants = None;
    let mut pass_filter: Option<String> = None;
    let mut format = "table".to_string();
    let mut timings = false;
    let mut pipeline = true;

    let mut index = 0;
    while index < args.len() {
        match args[index].as_str() {
            "--seed" => seed_text = value_of(args, &mut index, "--seed")?,
            "--mutants" => {
                let value = value_of(args, &mut index, "--mutants")?;
                max_mutants = Some(parse_count(&value, "--mutants")?);
            }
            "--pass" => pass_filter = Some(value_of(args, &mut index, "--pass")?),
            "--format" => format = value_of(args, &mut index, "--format")?,
            "--timings" => timings = true,
            "--no-pipeline" => pipeline = false,
            other => return Err(CmdError::Usage(format!("fuzz: unknown flag `{other}`"))),
        }
        index += 1;
    }
    if format != "table" && format != "json" {
        return Err(CmdError::Usage(format!("fuzz: unknown format `{format}`")));
    }

    let seed = parse_seed(&seed_text);
    if let Some(filter) = &pass_filter {
        if !giallar_core::registry::verified_passes().iter().any(|p| p.name == *filter) {
            return Err(CmdError::Usage(format!("fuzz: unknown pass `{filter}`")));
        }
        // A single-pass campaign has no meaningful pipeline leg.
        pipeline = false;
    }

    let report =
        run_campaign(&CampaignConfig { seed, max_mutants, pass_filter: pass_filter.clone() });
    let pipeline_outcomes = if pipeline {
        run_pipeline_campaign(
            &bench::pipeline_inputs(),
            bench::bug_detection::PIPELINE_DEVICE,
            bench::bug_detection::PIPELINE_SEED,
            BackendSelection::Default,
        )
    } else {
        Vec::new()
    };
    let result = BugDetection { report, pipeline: pipeline_outcomes };

    match format.as_str() {
        "json" => println!("{}", bug_detection_artifact_json(&result, timings)),
        _ => print!("{}", bug_detection_text(&result)),
    }

    let survivors = result.survivors();
    if survivors > 0 {
        return Err(CmdError::Failed(format!(
            "{survivors} mutant(s) survived the campaign (seed {seed_text})"
        )));
    }
    if result.report.total() == 0 {
        return Err(CmdError::Failed("campaign enumerated no mutants".to_string()));
    }
    Ok(())
}
