//! `giallar fuzz` — the fault-injection campaign.
//!
//! Enumerates mutants of the registry's proof obligations, discharges each
//! through every solver-backend routing, sabotages real compilations through the
//! certificate checker, and exits nonzero if any semantic wound survives.
//!
//! With `--generate` the campaign is generative instead: a seeded
//! random-circuit corpus is compiled honestly, each compilation is wounded
//! with a randomly drawn sabotage matrix, and every semantic fault must be
//! refused by `check-cert` under all three backends; surviving
//! counterexamples are delta-debugged to minimal wounding edits before they
//! are reported.

use bench::{
    bug_detection_artifact_json, bug_detection_text, BugDetection, CAMPAIGN_SEED,
    GENERATIVE_CIRCUITS,
};
use giallar_core::backend::BackendSelection;
use giallar_core::gen::{run_generative_campaign, GateAlphabet, GenConfig};
use giallar_core::mutate::{parse_seed, run_campaign, run_pipeline_campaign, CampaignConfig};

use crate::{parse_count, value_of, CmdError, CmdResult};

/// The environment knob widening (or shrinking) the default `--generate`
/// corpus — nightly CI sets it to run a larger corpus without touching the
/// pinned artifact configuration.
pub const CIRCUITS_ENV: &str = "GIALLAR_FUZZ_CIRCUITS";

/// The default generative corpus size: [`CIRCUITS_ENV`] when set, the
/// pinned [`GENERATIVE_CIRCUITS`] otherwise.
fn default_circuits() -> Result<usize, CmdError> {
    match std::env::var(CIRCUITS_ENV) {
        Ok(value) => value.parse::<usize>().map_err(|_| {
            CmdError::Failed(format!("fuzz: {CIRCUITS_ENV}: invalid circuit count `{value}`"))
        }),
        Err(_) => Ok(GENERATIVE_CIRCUITS),
    }
}

/// Maps a generator rejection message to the CLI flag that caused it (the
/// [`GenConfig::validate`] messages name the offending parameter).
fn flag_for(message: &str) -> &'static str {
    if message.contains("circuits") {
        "--circuits"
    } else if message.contains("width") {
        "--width"
    } else if message.contains("depth") {
        "--depth"
    } else {
        "--generate"
    }
}

/// Runs `giallar fuzz` with the args after the subcommand name.
pub fn run(args: &[String]) -> CmdResult {
    let mut seed_text = CAMPAIGN_SEED.to_string();
    let mut max_mutants = None;
    let mut pass_filter: Option<String> = None;
    let mut format = "table".to_string();
    let mut timings = false;
    let mut pipeline = true;
    let mut generate = false;
    let mut circuits: Option<usize> = None;
    let mut width: Option<usize> = None;
    let mut depth: Option<usize> = None;
    let mut alphabet_text: Option<String> = None;

    let mut index = 0;
    while index < args.len() {
        match args[index].as_str() {
            "--seed" => seed_text = value_of(args, &mut index, "--seed")?,
            "--mutants" => {
                let value = value_of(args, &mut index, "--mutants")?;
                max_mutants = Some(parse_count(&value, "--mutants")?);
            }
            "--pass" => pass_filter = Some(value_of(args, &mut index, "--pass")?),
            "--format" => format = value_of(args, &mut index, "--format")?,
            "--timings" => timings = true,
            "--no-pipeline" => pipeline = false,
            "--generate" => generate = true,
            "--circuits" => {
                let value = value_of(args, &mut index, "--circuits")?;
                circuits = Some(parse_count(&value, "--circuits")?);
            }
            "--width" => {
                let value = value_of(args, &mut index, "--width")?;
                width = Some(parse_count(&value, "--width")?);
            }
            "--depth" => {
                let value = value_of(args, &mut index, "--depth")?;
                depth = Some(parse_count(&value, "--depth")?);
            }
            "--alphabet" => alphabet_text = Some(value_of(args, &mut index, "--alphabet")?),
            other => return Err(CmdError::Usage(format!("fuzz: unknown flag `{other}`"))),
        }
        index += 1;
    }
    if format != "table" && format != "json" {
        return Err(CmdError::Usage(format!("fuzz: unknown format `{format}`")));
    }

    let seed = parse_seed(&seed_text);
    if generate {
        if max_mutants.is_some() || pass_filter.is_some() {
            return Err(CmdError::Usage(
                "fuzz: --mutants/--pass apply to the registry campaign, not --generate".to_string(),
            ));
        }
        return run_generate(
            seed,
            &seed_text,
            circuits,
            width,
            depth,
            alphabet_text,
            &format,
            timings,
        );
    }
    for (flag, present) in [
        ("--circuits", circuits.is_some()),
        ("--width", width.is_some()),
        ("--depth", depth.is_some()),
        ("--alphabet", alphabet_text.is_some()),
    ] {
        if present {
            return Err(CmdError::Usage(format!("fuzz: {flag} requires --generate")));
        }
    }

    if let Some(filter) = &pass_filter {
        if !giallar_core::registry::verified_passes().iter().any(|p| p.name == *filter) {
            return Err(CmdError::Usage(format!("fuzz: unknown pass `{filter}`")));
        }
        // A single-pass campaign has no meaningful pipeline leg.
        pipeline = false;
    }

    let report =
        run_campaign(&CampaignConfig { seed, max_mutants, pass_filter: pass_filter.clone() });
    let pipeline_outcomes = if pipeline {
        run_pipeline_campaign(
            &bench::pipeline_inputs(),
            bench::bug_detection::PIPELINE_DEVICE,
            bench::bug_detection::PIPELINE_SEED,
            BackendSelection::Default,
        )
    } else {
        Vec::new()
    };
    let result = BugDetection { report, pipeline: pipeline_outcomes, generative: None };

    match format.as_str() {
        "json" => println!("{}", bug_detection_artifact_json(&result, timings)),
        _ => print!("{}", bug_detection_text(&result)),
    }

    let survivors = result.survivors();
    if survivors > 0 {
        return Err(CmdError::Failed(format!(
            "{survivors} mutant(s) survived the campaign (seed {seed_text})"
        )));
    }
    if result.report.total() == 0 {
        return Err(CmdError::Failed("campaign enumerated no mutants".to_string()));
    }
    Ok(())
}

/// Runs the generative leg (`giallar fuzz --generate`).
#[allow(clippy::too_many_arguments)]
fn run_generate(
    seed: u64,
    seed_text: &str,
    circuits: Option<usize>,
    width: Option<usize>,
    depth: Option<usize>,
    alphabet_text: Option<String>,
    format: &str,
    timings: bool,
) -> CmdResult {
    let alphabet = match alphabet_text.as_deref() {
        None | Some("all") => None,
        Some(name) => Some(GateAlphabet::parse(name).ok_or_else(|| {
            CmdError::Failed(format!(
                "fuzz: --alphabet: unknown preset `{name}` (expected basis, clifford+t, full, \
                 or all)"
            ))
        })?),
    };
    let circuits = match circuits {
        Some(n) => n,
        None => default_circuits()?,
    };
    let pinned = GenConfig::pinned(seed, circuits);
    let config = GenConfig {
        seed,
        circuits,
        max_width: width.unwrap_or(pinned.max_width),
        max_depth: depth.unwrap_or(pinned.max_depth),
        alphabet,
    };
    let report = run_generative_campaign(
        &config,
        bench::bug_detection::PIPELINE_DEVICE,
        bench::bug_detection::PIPELINE_SEED,
    )
    .map_err(|message| CmdError::Failed(format!("fuzz: {}: {message}", flag_for(&message))))?;

    match format {
        "json" => println!("{}", report.to_json(timings).to_pretty()),
        _ => print!("{}", report.text(timings)),
    }

    let compiled = report.generated - report.skipped_uncompiled;
    if report.honest_accepted != compiled {
        return Err(CmdError::Failed(format!(
            "{} honest certificate(s) refused (seed {seed_text})",
            compiled - report.honest_accepted
        )));
    }
    let survivors = report.survivors().len();
    if survivors > 0 {
        return Err(CmdError::Failed(format!(
            "{survivors} generative counterexample(s) survived, shrunk above (seed {seed_text})"
        )));
    }
    Ok(())
}
