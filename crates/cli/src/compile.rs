//! `giallar compile` — run the transpiler on a circuit and report
//! compilation stats; with `--verified`, run the wrapped (Giallar) pipeline
//! alongside the baseline, report the verification overhead inline, and
//! re-verify the scheduled passes through the solver-backend registry.
//! With `--certify <path>`, additionally emit a machine-checkable
//! equivalence certificate that `giallar check-cert` re-validates.

use std::path::Path;
use std::time::Instant;

use giallar_core::certificate::certify_compilation;
use giallar_core::json::Value;
use giallar_core::verifier::verify_pass_with;
use giallar_core::wrapper::{baseline_transpile, giallar_pipeline_pass_names, giallar_transpile};
use qc_ir::Circuit;

use crate::flags::{list_circuits, parse_device, CompileFlags, OutputFormat};
use crate::{CmdError, CmdResult};

/// Loads the input circuit: a `.qasm` file path, or a named QASMBench
/// circuit from the built-in suite.
fn load_circuit(input: &str) -> Result<(String, Circuit), CmdError> {
    let path = Path::new(input);
    if input.ends_with(".qasm") || path.is_file() {
        let source = std::fs::read_to_string(path)
            .map_err(|error| CmdError::Failed(format!("reading {input}: {error}")))?;
        let circuit = qc_ir::qasm::from_qasm(&source)
            .map_err(|error| CmdError::Failed(format!("parsing {input}: {error:?}")))?;
        let name = path
            .file_stem()
            .map_or_else(|| input.to_string(), |s| s.to_string_lossy().into_owned());
        return Ok((name, circuit));
    }
    qasmbench::benchmark_suite()
        .into_iter()
        .find(|bench| bench.name == input)
        .map(|bench| (bench.name, bench.circuit))
        .ok_or_else(|| {
            CmdError::Usage(format!(
                "compile: `{input}` is neither a QASM file nor a known circuit \
                 (try `giallar compile --list`)"
            ))
        })
}

/// The Figure 11 measurement for one circuit: both pipelines, inline.
struct VerifiedRun {
    giallar_seconds: f64,
    /// Relative overhead of the verified pipeline (0.08 = +8 %).
    overhead: f64,
    /// Pipeline passes re-verified through the backend registry.
    passes_verified: usize,
    /// Subgoals discharged across those passes.
    subgoals: usize,
    verify_seconds: f64,
}

/// Runs `giallar compile`.
pub fn run(args: &[String]) -> CmdResult {
    let flags = CompileFlags::parse("compile", args)?;
    if flags.list {
        list_circuits();
        return Ok(());
    }
    let CompileFlags {
        input,
        device_spec,
        seed,
        format,
        verified: verified_mode,
        backend,
        certify,
        ..
    } = flags;
    let input =
        input.ok_or_else(|| CmdError::Usage("compile: missing input circuit".to_string()))?;
    let (name, circuit) = load_circuit(&input)?;
    let device = parse_device(&device_spec)?;
    if circuit.num_qubits() > device.num_qubits() {
        return Err(CmdError::Failed(format!(
            "{name} needs {} qubits but device `{device_spec}` has {}",
            circuit.num_qubits(),
            device.num_qubits()
        )));
    }

    let start = Instant::now();
    let result = baseline_transpile(&circuit, &device, seed)
        .map_err(|error| CmdError::Failed(format!("compiling {name}: {error:?}")))?;
    let seconds = start.elapsed().as_secs_f64();
    let swap_mapped = result.properties.get_bool("is_swap_mapped");

    let verified_run = if verified_mode {
        let start = Instant::now();
        let wrapped = giallar_transpile(&circuit, &device, seed)
            .map_err(|error| CmdError::Failed(format!("verified-compiling {name}: {error:?}")))?;
        let giallar_seconds = start.elapsed().as_secs_f64();
        if wrapped.circuit != result.circuit {
            return Err(CmdError::Failed(format!(
                "verified pipeline diverged from the baseline on {name}: \
                 {} vs {} gates — the wrapper conversions are not transparent",
                wrapped.circuit.size(),
                result.circuit.size()
            )));
        }
        // Re-verify the passes this compilation actually scheduled, through
        // the selected solver-backend routing.
        let pipeline = giallar_pipeline_pass_names(&device, seed);
        let registry = giallar_core::registry::verified_passes();
        let start = Instant::now();
        let mut passes_verified = 0usize;
        let mut subgoals = 0usize;
        for pass_name in &pipeline {
            let pass = registry.iter().find(|p| p.name == *pass_name).ok_or_else(|| {
                CmdError::Failed(format!("pipeline pass {pass_name} is not in the registry"))
            })?;
            let report = verify_pass_with(pass, backend);
            if !report.verified {
                return Err(CmdError::Failed(format!(
                    "pipeline pass {pass_name} failed verification: {}",
                    report.failure.as_deref().unwrap_or("no counterexample recorded")
                )));
            }
            passes_verified += 1;
            subgoals += report.subgoals;
        }
        let verify_seconds = start.elapsed().as_secs_f64();
        let overhead = if seconds > 0.0 { giallar_seconds / seconds - 1.0 } else { 0.0 };
        Some(VerifiedRun { giallar_seconds, overhead, passes_verified, subgoals, verify_seconds })
    } else {
        None
    };

    let certificate = if let Some(path) = &certify {
        let pipeline: Vec<String> =
            giallar_pipeline_pass_names(&device, seed).into_iter().map(str::to_string).collect();
        let cert =
            certify_compilation(&name, &device_spec, seed, &circuit, &result, &pipeline, backend);
        std::fs::write(path, cert.to_json().to_pretty())
            .map_err(|error| CmdError::Failed(format!("writing {path}: {error}")))?;
        Some((path.clone(), cert))
    } else {
        None
    };

    match format {
        OutputFormat::Table => {
            println!("circuit:        {name}");
            println!("device:         {device_spec} ({} qubits)", device.num_qubits());
            println!("seed:           {seed}");
            println!(
                "input:          {} qubits, {} gates, depth {}",
                circuit.num_qubits(),
                circuit.size(),
                circuit.depth()
            );
            println!(
                "output:         {} qubits, {} gates, depth {}",
                result.circuit.num_qubits(),
                result.circuit.size(),
                result.circuit.depth()
            );
            println!(
                "swap mapped:    {}",
                swap_mapped.map_or("unknown".to_string(), |b| b.to_string())
            );
            println!("compile time:   {:.2} ms", seconds * 1e3);
            if let Some(run) = &verified_run {
                println!(
                    "verified run:   {:.2} ms ({:+.1}% overhead, output identical)",
                    run.giallar_seconds * 1e3,
                    run.overhead * 100.0
                );
                println!(
                    "verification:   {} pipeline passes, {} subgoals proved in {:.2} ms \
                     (backend {backend})",
                    run.passes_verified,
                    run.subgoals,
                    run.verify_seconds * 1e3
                );
            }
            if let Some((path, cert)) = &certificate {
                println!(
                    "certificate:    {path} ({}, {} wires, backend {})",
                    if cert.verdict.is_proved() { "proved" } else { "NOT PROVED" },
                    cert.evidence.len(),
                    cert.backend
                );
            }
        }
        OutputFormat::Json => {
            let mut members = vec![
                ("schema", Value::String("giallar-compile/v1".to_string())),
                ("circuit", Value::String(name)),
                ("device", Value::String(device_spec)),
                ("seed", Value::Int(seed as i64)),
                (
                    "input",
                    Value::object(vec![
                        ("qubits", Value::Int(circuit.num_qubits() as i64)),
                        ("gates", Value::Int(circuit.size() as i64)),
                        ("depth", Value::Int(circuit.depth() as i64)),
                    ]),
                ),
                (
                    "output",
                    Value::object(vec![
                        ("qubits", Value::Int(result.circuit.num_qubits() as i64)),
                        ("gates", Value::Int(result.circuit.size() as i64)),
                        ("depth", Value::Int(result.circuit.depth() as i64)),
                    ]),
                ),
                ("swap_mapped", swap_mapped.map_or(Value::Null, Value::Bool)),
                ("seconds", Value::Float(seconds)),
            ];
            if let Some(run) = &verified_run {
                members.push((
                    "verified",
                    Value::object(vec![
                        ("backend", Value::String(backend.id().to_string())),
                        ("giallar_seconds", Value::Float(run.giallar_seconds)),
                        ("overhead", Value::Float(run.overhead)),
                        ("output_identical", Value::Bool(true)),
                        ("pipeline_passes", Value::Int(run.passes_verified as i64)),
                        ("subgoals", Value::Int(run.subgoals as i64)),
                        ("verify_seconds", Value::Float(run.verify_seconds)),
                    ]),
                ));
            }
            if let Some((path, cert)) = &certificate {
                members.push((
                    "certificate",
                    Value::object(vec![
                        ("path", Value::String(path.clone())),
                        ("proved", Value::Bool(cert.verdict.is_proved())),
                        ("wires", Value::Int(cert.evidence.len() as i64)),
                        ("backend", Value::String(cert.backend.clone())),
                    ]),
                ));
            }
            print!("{}", Value::object(members).to_pretty());
        }
    }
    if let Some((path, cert)) = &certificate {
        if !cert.verdict.is_proved() {
            return Err(CmdError::Failed(format!(
                "certificate written to {path} but the compilation did not certify: {:?}",
                cert.verdict
            )));
        }
    }
    Ok(())
}
