//! `giallar compile` — run the baseline transpiler on a circuit and report
//! compilation stats.

use std::path::Path;
use std::time::Instant;

use giallar_core::json::Value;
use giallar_core::wrapper::baseline_transpile;
use qc_ir::{Circuit, CouplingMap};

use crate::{value_of, CmdError, CmdResult};

enum Format {
    Table,
    Json,
}

/// Parses a device spec: `falcon27`, `line:<n>`, or `grid:<r>x<c>`.
fn parse_device(spec: &str) -> Result<CouplingMap, CmdError> {
    if spec == "falcon27" {
        return Ok(CouplingMap::falcon27());
    }
    if let Some(n) = spec.strip_prefix("line:") {
        let n: usize = n
            .parse()
            .map_err(|_| CmdError::Usage(format!("--device: bad line size in `{spec}`")))?;
        if n == 0 {
            return Err(CmdError::Usage("--device: line needs at least 1 qubit".to_string()));
        }
        return Ok(CouplingMap::line(n));
    }
    if let Some(dims) = spec.strip_prefix("grid:") {
        if let Some((rows, cols)) = dims.split_once('x') {
            let rows: usize = rows
                .parse()
                .map_err(|_| CmdError::Usage(format!("--device: bad grid rows in `{spec}`")))?;
            let cols: usize = cols
                .parse()
                .map_err(|_| CmdError::Usage(format!("--device: bad grid cols in `{spec}`")))?;
            if rows == 0 || cols == 0 {
                return Err(CmdError::Usage("--device: grid dims must be positive".to_string()));
            }
            return Ok(CouplingMap::grid(rows, cols));
        }
    }
    Err(CmdError::Usage(format!(
        "--device: unknown device `{spec}` (expected falcon27, line:<n>, or grid:<r>x<c>)"
    )))
}

/// Loads the input circuit: a `.qasm` file path, or a named QASMBench
/// circuit from the built-in suite.
fn load_circuit(input: &str) -> Result<(String, Circuit), CmdError> {
    let path = Path::new(input);
    if input.ends_with(".qasm") || path.is_file() {
        let source = std::fs::read_to_string(path)
            .map_err(|error| CmdError::Failed(format!("reading {input}: {error}")))?;
        let circuit = qc_ir::qasm::from_qasm(&source)
            .map_err(|error| CmdError::Failed(format!("parsing {input}: {error:?}")))?;
        let name = path
            .file_stem()
            .map_or_else(|| input.to_string(), |s| s.to_string_lossy().into_owned());
        return Ok((name, circuit));
    }
    qasmbench::benchmark_suite()
        .into_iter()
        .find(|bench| bench.name == input)
        .map(|bench| (bench.name, bench.circuit))
        .ok_or_else(|| {
            CmdError::Usage(format!(
                "compile: `{input}` is neither a QASM file nor a known circuit \
                 (try `giallar compile --list`)"
            ))
        })
}

/// Runs `giallar compile`.
pub fn run(args: &[String]) -> CmdResult {
    let mut input: Option<String> = None;
    let mut device_spec = "falcon27".to_string();
    let mut seed = 7u64;
    let mut format = Format::Table;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--device" => device_spec = value_of(args, &mut i, "--device")?,
            "--seed" => {
                seed = value_of(args, &mut i, "--seed")?
                    .parse()
                    .map_err(|_| CmdError::Usage("--seed: invalid seed".to_string()))?
            }
            "--format" => {
                format = match value_of(args, &mut i, "--format")?.as_str() {
                    "table" => Format::Table,
                    "json" => Format::Json,
                    other => {
                        return Err(CmdError::Usage(format!("--format: unknown format `{other}`")))
                    }
                }
            }
            "--list" => {
                for bench in qasmbench::benchmark_suite() {
                    println!(
                        "{:<16} {:>3} qubits {:>5} gates",
                        bench.name,
                        bench.circuit.num_qubits(),
                        bench.circuit.size()
                    );
                }
                return Ok(());
            }
            flag if flag.starts_with("--") => {
                return Err(CmdError::Usage(format!("compile: unknown option `{flag}`")))
            }
            positional => {
                if input.is_some() {
                    return Err(CmdError::Usage("compile: more than one input given".to_string()));
                }
                input = Some(positional.to_string());
            }
        }
        i += 1;
    }
    let input =
        input.ok_or_else(|| CmdError::Usage("compile: missing input circuit".to_string()))?;
    let (name, circuit) = load_circuit(&input)?;
    let device = parse_device(&device_spec)?;
    if circuit.num_qubits() > device.num_qubits() {
        return Err(CmdError::Failed(format!(
            "{name} needs {} qubits but device `{device_spec}` has {}",
            circuit.num_qubits(),
            device.num_qubits()
        )));
    }

    let start = Instant::now();
    let result = baseline_transpile(&circuit, &device, seed)
        .map_err(|error| CmdError::Failed(format!("compiling {name}: {error:?}")))?;
    let seconds = start.elapsed().as_secs_f64();
    let swap_mapped = result.properties.get_bool("is_swap_mapped");

    match format {
        Format::Table => {
            println!("circuit:        {name}");
            println!("device:         {device_spec} ({} qubits)", device.num_qubits());
            println!("seed:           {seed}");
            println!(
                "input:          {} qubits, {} gates, depth {}",
                circuit.num_qubits(),
                circuit.size(),
                circuit.depth()
            );
            println!(
                "output:         {} qubits, {} gates, depth {}",
                result.circuit.num_qubits(),
                result.circuit.size(),
                result.circuit.depth()
            );
            println!(
                "swap mapped:    {}",
                swap_mapped.map_or("unknown".to_string(), |b| b.to_string())
            );
            println!("compile time:   {:.2} ms", seconds * 1e3);
        }
        Format::Json => {
            let doc = Value::object(vec![
                ("schema", Value::String("giallar-compile/v1".to_string())),
                ("circuit", Value::String(name)),
                ("device", Value::String(device_spec)),
                ("seed", Value::Int(seed as i64)),
                (
                    "input",
                    Value::object(vec![
                        ("qubits", Value::Int(circuit.num_qubits() as i64)),
                        ("gates", Value::Int(circuit.size() as i64)),
                        ("depth", Value::Int(circuit.depth() as i64)),
                    ]),
                ),
                (
                    "output",
                    Value::object(vec![
                        ("qubits", Value::Int(result.circuit.num_qubits() as i64)),
                        ("gates", Value::Int(result.circuit.size() as i64)),
                        ("depth", Value::Int(result.circuit.depth() as i64)),
                    ]),
                ),
                ("swap_mapped", swap_mapped.map_or(Value::Null, Value::Bool)),
                ("seconds", Value::Float(seconds)),
            ]);
            print!("{}", doc.to_pretty());
        }
    }
    Ok(())
}
