//! `giallar serve` — run the resident verification daemon.

use std::path::PathBuf;
use std::sync::Arc;

use giallar_core::cache::VerdictCache;
use giallar_core::shard::EvictionPolicy;
use giallar_serve::engine::{Engine, EngineConfig};
use giallar_serve::net::Endpoint;
use giallar_serve::protocol::DEFAULT_ADDR;
use giallar_serve::server::Server;

use crate::{parse_count, value_of, CmdError, CmdResult};

struct Options {
    listen: String,
    shards: usize,
    max_entries: Option<usize>,
    ttl: Option<u64>,
    cache_path: Option<PathBuf>,
}

fn parse_options(args: &[String]) -> Result<Options, CmdError> {
    let mut options = Options {
        listen: DEFAULT_ADDR.to_string(),
        shards: 8,
        max_entries: None,
        ttl: None,
        cache_path: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => options.listen = value_of(args, &mut i, "--listen")?,
            "--shards" => {
                let shards = parse_count(&value_of(args, &mut i, "--shards")?, "--shards")?;
                if shards == 0 {
                    return Err(CmdError::Usage("--shards must be at least 1".to_string()));
                }
                options.shards = shards;
            }
            "--max-entries" => {
                options.max_entries =
                    Some(parse_count(&value_of(args, &mut i, "--max-entries")?, "--max-entries")?)
            }
            "--ttl" => {
                options.ttl = Some(parse_count(&value_of(args, &mut i, "--ttl")?, "--ttl")? as u64)
            }
            "--cache" => {
                options.cache_path = Some(PathBuf::from(value_of(args, &mut i, "--cache")?))
            }
            other => return Err(CmdError::Usage(format!("serve: unknown option `{other}`"))),
        }
        i += 1;
    }
    Ok(options)
}

/// Runs `giallar serve`: builds the resident engine (warm-started from
/// `--cache` when the file exists), binds the socket, and serves until a
/// client sends `shutdown`.  On shutdown the sharded cache is written back
/// to `--cache`, so the next daemon (or a plain `giallar verify --cache`)
/// starts warm.
pub fn run(args: &[String]) -> CmdResult {
    let options = parse_options(args)?;
    let policy = EvictionPolicy { max_entries: options.max_entries, ttl: options.ttl };
    let config = EngineConfig { shards: options.shards, policy };

    let engine = match &options.cache_path {
        Some(path) if path.exists() => {
            let (cache, warning) = VerdictCache::load_lenient(path);
            if let Some(warning) = warning {
                eprintln!("warning: {warning}");
            }
            eprintln!("serve: warm-started from {} ({} entries)", path.display(), cache.len());
            Engine::with_cache(config, &cache)
        }
        _ => Engine::new(config),
    };

    let endpoint = Endpoint::parse(&options.listen);
    let server = Server::bind(Arc::new(engine), &endpoint)
        .map_err(|error| CmdError::Failed(format!("serve: could not bind {endpoint}: {error}")))?;
    let engine = Arc::clone(server.engine());
    eprintln!(
        "serve: listening on {} ({} shards, policy max_entries={:?} ttl={:?})",
        server.local_endpoint(),
        options.shards,
        options.max_entries,
        options.ttl
    );
    server.run().map_err(|error| CmdError::Failed(format!("serve: {error}")))?;

    if let Some(path) = &options.cache_path {
        let cache = engine.cache().to_cache();
        match cache.save(path) {
            Ok(()) => {
                eprintln!("serve: saved {} entries to {}", cache.len(), path.display())
            }
            Err(error) => {
                eprintln!("warning: could not save cache {}: {error}", path.display())
            }
        }
    }
    eprintln!("serve: stopped");
    Ok(())
}
