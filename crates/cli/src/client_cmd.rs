//! `giallar client` — talk to a running `giallar serve` daemon.
//!
//! `client verify` reconstructs the served reports and renders them through
//! the same code path as `giallar verify`, so at equal cache state the two
//! commands print byte-identical output (the serve-smoke CI job `cmp`s
//! them).

use giallar_core::backend::BackendSelection;
use giallar_core::json::Value;
use giallar_core::registry::verified_passes;
use giallar_core::verifier::PassReport;
use giallar_serve::client::{Client, ClientError};
use giallar_serve::protocol::DEFAULT_ADDR;

use crate::verify::{render_reports, Format};
use crate::{parse_count, value_of, CmdError, CmdResult};

fn connect(spec: &str) -> Result<Client, CmdError> {
    Client::connect(spec).map_err(|error| {
        CmdError::Failed(format!(
            "client: could not connect to {spec}: {error} (is `giallar serve` running?)"
        ))
    })
}

fn command_error(error: ClientError) -> CmdError {
    match error {
        ClientError::Server(message) => CmdError::Failed(message),
        other => CmdError::Failed(format!("client: {other}")),
    }
}

struct VerifyOptions {
    passes: Vec<String>,
    backend: BackendSelection,
    format: Format,
    deterministic: bool,
    per_pass: bool,
    expect_passes: Option<usize>,
    min_cache_hits: Option<usize>,
}

fn parse_verify_options(args: &[String]) -> Result<VerifyOptions, CmdError> {
    let mut options = VerifyOptions {
        passes: Vec::new(),
        backend: BackendSelection::Default,
        format: Format::Table,
        deterministic: false,
        per_pass: false,
        expect_passes: None,
        min_cache_hits: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--pass" => options.passes.push(value_of(args, &mut i, "--pass")?),
            "--backend" => options.backend = crate::parse_backend(args, &mut i)?,
            "--format" => options.format = Format::parse(&value_of(args, &mut i, "--format")?)?,
            "--deterministic" => options.deterministic = true,
            "--per-pass" => options.per_pass = true,
            "--expect-passes" => {
                options.expect_passes = Some(parse_count(
                    &value_of(args, &mut i, "--expect-passes")?,
                    "--expect-passes",
                )?)
            }
            "--min-cache-hits" => {
                options.min_cache_hits = Some(parse_count(
                    &value_of(args, &mut i, "--min-cache-hits")?,
                    "--min-cache-hits",
                )?)
            }
            other => {
                return Err(CmdError::Usage(format!("client verify: unknown option `{other}`")))
            }
        }
        i += 1;
    }
    if options.per_pass && !options.passes.is_empty() {
        return Err(CmdError::Usage(
            "client verify: --per-pass replays the whole registry; drop --pass".to_string(),
        ));
    }
    Ok(options)
}

/// Pulls `hits`, `misses`, and the decoded reports out of one `verify`
/// result object.
fn decode_verify(result: &Value) -> Result<(usize, usize, Vec<PassReport>), CmdError> {
    let count = |key: &str| -> Result<usize, CmdError> {
        result
            .get(key)
            .and_then(Value::as_int)
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| CmdError::Failed(format!("client: response missing `{key}`")))
    };
    let reports = match result.get("reports") {
        Some(Value::Array(items)) => items
            .iter()
            .map(PassReport::from_json_value)
            .collect::<Result<Vec<PassReport>, String>>()
            .map_err(|error| CmdError::Failed(format!("client: {error}")))?,
        _ => return Err(CmdError::Failed("client: response missing `reports`".to_string())),
    };
    Ok((count("hits")?, count("misses")?, reports))
}

fn run_verify(client: &mut Client, args: &[String]) -> CmdResult {
    let options = parse_verify_options(args)?;
    let mut hits = 0usize;
    let mut misses = 0usize;
    let mut reports: Vec<PassReport> = Vec::new();
    if options.per_pass {
        // Replay the registry one request per pass (the serve-smoke CI job
        // uses this to exercise the warm path pass by pass).  The server
        // walks each request in registry order, so concatenating preserves
        // the order of a whole-registry run.
        for pass in verified_passes() {
            let result = client
                .verify(Some(vec![pass.name.to_string()]), options.backend)
                .map_err(command_error)?;
            let (pass_hits, pass_misses, pass_reports) = decode_verify(&result)?;
            hits += pass_hits;
            misses += pass_misses;
            reports.extend(pass_reports);
        }
    } else {
        let passes = (!options.passes.is_empty()).then(|| options.passes.clone());
        let result = client.verify(passes, options.backend).map_err(command_error)?;
        (hits, misses, reports) = decode_verify(&result)?;
    }

    print!("{}", render_reports(&reports, &options.format, options.deterministic, options.backend));

    let verified = reports.iter().filter(|r| r.verified).count();
    if let Some(first) = reports.iter().find(|r| !r.verified) {
        return Err(CmdError::Failed(format!(
            "{} of {} passes failed verification; first: {} — {}",
            reports.len() - verified,
            reports.len(),
            first.name,
            first.failure.as_deref().unwrap_or("no counterexample recorded")
        )));
    }
    if let Some(expected) = options.expect_passes {
        if reports.len() != expected {
            return Err(CmdError::Failed(format!(
                "pass-count drift: expected {expected} verified passes, got {}",
                reports.len()
            )));
        }
    }
    if let Some(floor) = options.min_cache_hits {
        if hits < floor {
            return Err(CmdError::Failed(format!(
                "cache hits below floor: {hits} < {floor} obligations (server cache colder \
                 than expected)"
            )));
        }
    }
    let _ = misses;
    Ok(())
}

fn run_compile(client: &mut Client, args: &[String]) -> CmdResult {
    let mut circuit: Option<String> = None;
    let mut device = "falcon27".to_string();
    let mut seed = 7u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--device" => device = value_of(args, &mut i, "--device")?,
            "--seed" => seed = parse_count(&value_of(args, &mut i, "--seed")?, "--seed")? as u64,
            other if !other.starts_with('-') && circuit.is_none() => {
                circuit = Some(other.to_string())
            }
            other => {
                return Err(CmdError::Usage(format!("client compile: unknown option `{other}`")))
            }
        }
        i += 1;
    }
    let circuit =
        circuit.ok_or_else(|| CmdError::Usage("client compile: missing circuit name".into()))?;
    let result = client.compile(&circuit, &device, seed).map_err(command_error)?;
    println!("{}", result.to_pretty());
    Ok(())
}

/// Runs `giallar client`.  The first non-flag argument picks the operation;
/// `--connect <spec>` (default `127.0.0.1:7411`, `unix:<path>` for Unix
/// sockets) must come before it.
pub fn run(args: &[String]) -> CmdResult {
    let mut connect_spec = DEFAULT_ADDR.to_string();
    let mut i = 0;
    while i < args.len() && args[i].starts_with("--") {
        match args[i].as_str() {
            "--connect" => connect_spec = value_of(args, &mut i, "--connect")?,
            other => return Err(CmdError::Usage(format!("client: unknown option `{other}`"))),
        }
        i += 1;
    }
    let Some(op) = args.get(i).map(String::as_str) else {
        return Err(CmdError::Usage(
            "client: missing operation (status | verify | compile | invalidate | compact | \
             evict | shutdown)"
                .to_string(),
        ));
    };
    let rest = &args[i + 1..];
    let mut client = connect(&connect_spec)?;
    match op {
        "verify" => run_verify(&mut client, rest),
        "compile" => run_compile(&mut client, rest),
        "status" => {
            if let Some(extra) = rest.first() {
                return Err(CmdError::Usage(format!("client status: unknown option `{extra}`")));
            }
            let result = client.status().map_err(command_error)?;
            println!("{}", result.to_pretty());
            Ok(())
        }
        "invalidate" => {
            let mut pass: Option<String> = None;
            let mut backend = BackendSelection::Default;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--backend" => backend = crate::parse_backend(rest, &mut i)?,
                    other if !other.starts_with('-') && pass.is_none() => {
                        pass = Some(other.to_string())
                    }
                    other => {
                        return Err(CmdError::Usage(format!(
                            "client invalidate: unknown option `{other}`"
                        )))
                    }
                }
                i += 1;
            }
            let pass =
                pass.ok_or_else(|| CmdError::Usage("client invalidate: missing pass name".into()))?;
            let result = client.invalidate(&pass, backend).map_err(command_error)?;
            println!("{}", result.to_pretty());
            Ok(())
        }
        "compact" => {
            let retired: Vec<String> = rest.to_vec();
            if let Some(flag) = retired.iter().find(|r| r.starts_with('-')) {
                return Err(CmdError::Usage(format!("client compact: unknown option `{flag}`")));
            }
            let result = client.compact(retired).map_err(command_error)?;
            println!("{}", result.to_pretty());
            Ok(())
        }
        "evict" => {
            let result = client.evict().map_err(command_error)?;
            println!("{}", result.to_pretty());
            Ok(())
        }
        "shutdown" => {
            let result = client.shutdown().map_err(command_error)?;
            println!("{}", result.to_pretty());
            Ok(())
        }
        other => Err(CmdError::Usage(format!("client: unknown operation `{other}`"))),
    }
}
