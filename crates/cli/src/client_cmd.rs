//! `giallar client` — talk to a running `giallar serve` daemon.
//!
//! `client verify` reconstructs the served reports and renders them through
//! the same code path as `giallar verify`, so at equal cache state the two
//! commands print byte-identical output (the serve-smoke CI job `cmp`s
//! them).  `client compile` accepts the same flag grammar as `giallar
//! compile` (both parse through [`crate::flags::CompileFlags`]); with
//! `--certify <path>` it writes the daemon-emitted certificate, which is
//! byte-identical to what a local `compile --certify` of the same input
//! writes (the certify-smoke CI job `cmp`s them).

use giallar_core::backend::BackendSelection;
use giallar_core::certificate::EquivalenceCertificate;
use giallar_core::json::Value;
use giallar_core::registry::verified_passes;
use giallar_core::verifier::PassReport;
use giallar_serve::client::{Client, ClientError};
use giallar_serve::protocol::DEFAULT_ADDR;

use crate::flags::{list_circuits, parse_device, CompileFlags, OutputFormat};
use crate::verify::{render_reports, Format};
use crate::{parse_count, value_of, CmdError, CmdResult};

fn connect(spec: &str) -> Result<Client, CmdError> {
    Client::connect(spec).map_err(|error| {
        CmdError::Failed(format!(
            "client: could not connect to {spec}: {error} (is `giallar serve` running?)"
        ))
    })
}

fn command_error(error: ClientError) -> CmdError {
    match error {
        ClientError::Server(message) => CmdError::Failed(message),
        other => CmdError::Failed(format!("client: {other}")),
    }
}

struct VerifyOptions {
    passes: Vec<String>,
    backend: BackendSelection,
    format: Format,
    deterministic: bool,
    per_pass: bool,
    expect_passes: Option<usize>,
    min_cache_hits: Option<usize>,
}

fn parse_verify_options(args: &[String]) -> Result<VerifyOptions, CmdError> {
    let mut options = VerifyOptions {
        passes: Vec::new(),
        backend: BackendSelection::Default,
        format: Format::Table,
        deterministic: false,
        per_pass: false,
        expect_passes: None,
        min_cache_hits: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--pass" => options.passes.push(value_of(args, &mut i, "--pass")?),
            "--backend" => options.backend = crate::flags::parse_backend(args, &mut i)?,
            "--format" => options.format = Format::parse(&value_of(args, &mut i, "--format")?)?,
            "--deterministic" => options.deterministic = true,
            "--per-pass" => options.per_pass = true,
            "--expect-passes" => {
                options.expect_passes = Some(parse_count(
                    &value_of(args, &mut i, "--expect-passes")?,
                    "--expect-passes",
                )?)
            }
            "--min-cache-hits" => {
                options.min_cache_hits = Some(parse_count(
                    &value_of(args, &mut i, "--min-cache-hits")?,
                    "--min-cache-hits",
                )?)
            }
            other => {
                return Err(CmdError::Usage(format!("client verify: unknown option `{other}`")))
            }
        }
        i += 1;
    }
    if options.per_pass && !options.passes.is_empty() {
        return Err(CmdError::Usage(
            "client verify: --per-pass replays the whole registry; drop --pass".to_string(),
        ));
    }
    Ok(options)
}

/// Pulls `hits`, `misses`, and the decoded reports out of one `verify`
/// result object.
fn decode_verify(result: &Value) -> Result<(usize, usize, Vec<PassReport>), CmdError> {
    let count = |key: &str| -> Result<usize, CmdError> {
        result
            .get(key)
            .and_then(Value::as_int)
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| CmdError::Failed(format!("client: response missing `{key}`")))
    };
    let reports = match result.get("reports") {
        Some(Value::Array(items)) => items
            .iter()
            .map(PassReport::from_json_value)
            .collect::<Result<Vec<PassReport>, String>>()
            .map_err(|error| CmdError::Failed(format!("client: {error}")))?,
        _ => return Err(CmdError::Failed("client: response missing `reports`".to_string())),
    };
    Ok((count("hits")?, count("misses")?, reports))
}

fn run_verify(client: &mut Client, args: &[String]) -> CmdResult {
    let options = parse_verify_options(args)?;
    let mut hits = 0usize;
    let mut misses = 0usize;
    let mut reports: Vec<PassReport> = Vec::new();
    if options.per_pass {
        // Replay the registry one request per pass (the serve-smoke CI job
        // uses this to exercise the warm path pass by pass).  The server
        // walks each request in registry order, so concatenating preserves
        // the order of a whole-registry run.
        for pass in verified_passes() {
            let result = client
                .verify(Some(vec![pass.name.to_string()]), options.backend)
                .map_err(command_error)?;
            let (pass_hits, pass_misses, pass_reports) = decode_verify(&result)?;
            hits += pass_hits;
            misses += pass_misses;
            reports.extend(pass_reports);
        }
    } else {
        let passes = (!options.passes.is_empty()).then(|| options.passes.clone());
        let result = client.verify(passes, options.backend).map_err(command_error)?;
        (hits, misses, reports) = decode_verify(&result)?;
    }

    print!("{}", render_reports(&reports, &options.format, options.deterministic, options.backend));

    let verified = reports.iter().filter(|r| r.verified).count();
    if let Some(first) = reports.iter().find(|r| !r.verified) {
        return Err(CmdError::Failed(format!(
            "{} of {} passes failed verification; first: {} — {}",
            reports.len() - verified,
            reports.len(),
            first.name,
            first.failure.as_deref().unwrap_or("no counterexample recorded")
        )));
    }
    if let Some(expected) = options.expect_passes {
        if reports.len() != expected {
            return Err(CmdError::Failed(format!(
                "pass-count drift: expected {expected} verified passes, got {}",
                reports.len()
            )));
        }
    }
    if let Some(floor) = options.min_cache_hits {
        if hits < floor {
            return Err(CmdError::Failed(format!(
                "cache hits below floor: {hits} < {floor} obligations (server cache colder \
                 than expected)"
            )));
        }
    }
    let _ = misses;
    Ok(())
}

/// Pulls an integer member out of a served result object.
fn int_member(value: &Value, key: &str) -> Result<i64, CmdError> {
    value
        .get(key)
        .and_then(Value::as_int)
        .ok_or_else(|| CmdError::Failed(format!("client: response missing `{key}`")))
}

/// Decodes one `(qubits, gates, depth)` shape object from a served
/// `compile` result.
fn shape_member(value: &Value, key: &str) -> Result<(i64, i64, i64), CmdError> {
    let shape = value
        .get(key)
        .ok_or_else(|| CmdError::Failed(format!("client: response missing `{key}`")))?;
    Ok((int_member(shape, "qubits")?, int_member(shape, "gates")?, int_member(shape, "depth")?))
}

/// `client compile --certify`: certify server-side, persist the daemon's
/// certificate document byte-identically, and report the outcome.
fn run_certify(
    client: &mut Client,
    circuit: &str,
    device_spec: &str,
    seed: u64,
    backend: BackendSelection,
    path: &str,
    format: &OutputFormat,
) -> CmdResult {
    let result = client.certify(circuit, device_spec, seed, backend).map_err(command_error)?;
    let document = result
        .get("certificate")
        .ok_or_else(|| CmdError::Failed("client: response missing `certificate`".to_string()))?;
    // Write exactly what `giallar compile --certify` writes: the pretty
    // printing of the certificate document (member order survives the wire
    // round trip, so the files `cmp` equal).
    std::fs::write(path, document.to_pretty())
        .map_err(|error| CmdError::Failed(format!("writing {path}: {error}")))?;
    let cert = EquivalenceCertificate::from_json(document)
        .map_err(|error| CmdError::Failed(format!("client: malformed certificate: {error}")))?;
    let cached = result.get("cached").and_then(Value::as_bool).unwrap_or(false);
    match format {
        OutputFormat::Table => {
            println!("circuit:        {}", cert.circuit);
            println!("device:         {} (seed {})", cert.device, cert.seed);
            println!(
                "certificate:    {path} ({}, {} wires, backend {})",
                if cert.verdict.is_proved() { "proved" } else { "NOT PROVED" },
                cert.evidence.len(),
                cert.backend
            );
            println!("served verdict: {}", if cached { "cache hit" } else { "cache miss" });
        }
        OutputFormat::Json => {
            print!(
                "{}",
                Value::object(vec![
                    ("schema", Value::String("giallar-client-certify/v1".to_string())),
                    ("circuit", Value::String(cert.circuit.clone())),
                    ("device", Value::String(cert.device.clone())),
                    ("seed", Value::Int(cert.seed as i64)),
                    (
                        "certificate",
                        Value::object(vec![
                            ("path", Value::String(path.to_string())),
                            ("proved", Value::Bool(cert.verdict.is_proved())),
                            ("wires", Value::Int(cert.evidence.len() as i64)),
                            ("backend", Value::String(cert.backend.clone())),
                        ]),
                    ),
                    ("cached", Value::Bool(cached)),
                ])
                .to_pretty()
            );
        }
    }
    if !cert.verdict.is_proved() {
        return Err(CmdError::Failed(format!(
            "certificate written to {path} but the compilation did not certify: {:?}",
            cert.verdict
        )));
    }
    Ok(())
}

fn run_compile(client: &mut Client, args: &[String]) -> CmdResult {
    let flags = CompileFlags::parse("client compile", args)?;
    if flags.list {
        list_circuits();
        return Ok(());
    }
    let CompileFlags { input, device_spec, seed, format, verified, backend, certify, .. } = flags;
    if verified {
        return Err(CmdError::Usage(
            "client compile: --verified runs the wrapped pipeline locally and is not a served \
             op; use `giallar compile --verified`"
                .to_string(),
        ));
    }
    let circuit =
        input.ok_or_else(|| CmdError::Usage("client compile: missing input circuit".into()))?;
    if let Some(path) = &certify {
        return run_certify(client, &circuit, &device_spec, seed, backend, path, &format);
    }
    let result = client.compile(&circuit, &device_spec, seed).map_err(command_error)?;
    match format {
        OutputFormat::Table => {
            // Mirror the `giallar compile` table (the device qubit count is
            // recomputed locally; the spec grammar is shared).
            let device = parse_device(&device_spec)?;
            let (in_q, in_g, in_d) = shape_member(&result, "input")?;
            let (out_q, out_g, out_d) = shape_member(&result, "output")?;
            println!("circuit:        {circuit}");
            println!("device:         {device_spec} ({} qubits)", device.num_qubits());
            println!("seed:           {seed}");
            println!("input:          {in_q} qubits, {in_g} gates, depth {in_d}");
            println!("output:         {out_q} qubits, {out_g} gates, depth {out_d}");
            println!(
                "swap mapped:    {}",
                match result.get("swap_mapped").and_then(Value::as_bool) {
                    Some(mapped) => mapped.to_string(),
                    None => "unknown".to_string(),
                }
            );
        }
        OutputFormat::Json => println!("{}", result.to_pretty()),
    }
    Ok(())
}

/// Runs `giallar client`.  The first non-flag argument picks the operation;
/// `--connect <spec>` (default `127.0.0.1:7411`, `unix:<path>` for Unix
/// sockets) must come before it.
pub fn run(args: &[String]) -> CmdResult {
    let mut connect_spec = DEFAULT_ADDR.to_string();
    let mut i = 0;
    while i < args.len() && args[i].starts_with("--") {
        match args[i].as_str() {
            "--connect" => connect_spec = value_of(args, &mut i, "--connect")?,
            other => return Err(CmdError::Usage(format!("client: unknown option `{other}`"))),
        }
        i += 1;
    }
    let Some(op) = args.get(i).map(String::as_str) else {
        return Err(CmdError::Usage(
            "client: missing operation (status | verify | compile | invalidate | compact | \
             evict | shutdown)"
                .to_string(),
        ));
    };
    let rest = &args[i + 1..];
    let mut client = connect(&connect_spec)?;
    match op {
        "verify" => run_verify(&mut client, rest),
        "compile" => run_compile(&mut client, rest),
        "status" => {
            if let Some(extra) = rest.first() {
                return Err(CmdError::Usage(format!("client status: unknown option `{extra}`")));
            }
            let result = client.status().map_err(command_error)?;
            println!("{}", result.to_pretty());
            Ok(())
        }
        "invalidate" => {
            let mut pass: Option<String> = None;
            let mut backend = BackendSelection::Default;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--backend" => backend = crate::flags::parse_backend(rest, &mut i)?,
                    other if !other.starts_with('-') && pass.is_none() => {
                        pass = Some(other.to_string())
                    }
                    other => {
                        return Err(CmdError::Usage(format!(
                            "client invalidate: unknown option `{other}`"
                        )))
                    }
                }
                i += 1;
            }
            let pass =
                pass.ok_or_else(|| CmdError::Usage("client invalidate: missing pass name".into()))?;
            let result = client.invalidate(&pass, backend).map_err(command_error)?;
            println!("{}", result.to_pretty());
            Ok(())
        }
        "compact" => {
            let retired: Vec<String> = rest.to_vec();
            if let Some(flag) = retired.iter().find(|r| r.starts_with('-')) {
                return Err(CmdError::Usage(format!("client compact: unknown option `{flag}`")));
            }
            let result = client.compact(retired).map_err(command_error)?;
            println!("{}", result.to_pretty());
            Ok(())
        }
        "evict" => {
            let result = client.evict().map_err(command_error)?;
            println!("{}", result.to_pretty());
            Ok(())
        }
        "shutdown" => {
            let result = client.shutdown().map_err(command_error)?;
            println!("{}", result.to_pretty());
            Ok(())
        }
        other => Err(CmdError::Usage(format!("client: unknown operation `{other}`"))),
    }
}
